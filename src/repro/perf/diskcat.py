"""Zero-copy on-disk index: the ``.segosx`` sidecar format.

``core/persistence.py`` keeps the *graphs* in the portable transaction
text format and, before this module, rebuilt the two-level index from
scratch on every load — a full decompose-and-insert pass per process.
That is the right durability story (the text file stays diff-able and
interoperable) but the wrong cold-start story for a warm, multi-process
engine: every worker paid the rebuild, and the pool paths additionally
paid a full ``pickle.dumps(engine)`` per spawn.

This module adds a derived, disposable **index sidecar** next to the
graph file (``db.segos`` → ``db.segos.segosx``), following the jn
byte-offset-index design: the sidecar is never authoritative, carries an
explicit staleness check against its source (size + SHA-256), and can be
deleted at any time at the cost of one rebuild.

File layout (all integers little-endian ``int64`` unless noted)::

    ┌────────────────────────────────────────────────────────┐
    │ header: 256 bytes, fixed struct                        │
    │   magic "SEGX" · format version · header CRC32         │
    │   generation · base_generation                         │
    │   source size · source SHA-256                         │
    │   meta JSON offset/length                              │
    │   section-table offset/count                           │
    │   delta region offset/count/bytes                      │
    ├────────────────────────────────────────────────────────┤
    │ meta: JSON (counts + the full resolved EngineConfig)   │
    ├────────────────────────────────────────────────────────┤
    │ section table: (name[16], offset, length, CRC32) × N   │
    ├────────────────────────────────────────────────────────┤
    │ sections: 64-byte-aligned int64 arrays / UTF-8 blobs   │
    │   label + gid string tables (offsets into blobs)       │
    │   per-graph order / max-degree columns                 │
    │   graph → star-count CSR                               │
    │   the eight ColumnarCatalog columns (see below)        │
    │   star refcounts                                       │
    │   upper-level CSR (per-sid postings in Figure-5 order) │
    │   lower-level permutation (Figure-6 order) + size list │
    ├────────────────────────────────────────────────────────┤
    │ delta region: append-only op journal (see DeltaSegment)│
    └────────────────────────────────────────────────────────┘

Star ids in a sidecar are **canonical**: the writer renumbers stars in
first-occurrence order over the graphs as serialised, which is exactly
the numbering a rebuild of the same text file would assign.  Since sids
participate in the deterministic ``(sed, sid)`` tie-break of both top-k
backends, this makes a mapped engine return *byte-identical* results to
a rebuilt one — candidates, matches, orderings, all five query modes (a
hypothesis test pins this).

Reads are zero-copy: :class:`DiskCatalog` mmaps the file and exposes the
arrays as ``numpy.frombuffer`` views (or ``memoryview.cast('q')``
sequences under the pure-Python fallback), :class:`MappedTwoLevelIndex`
materialises per-label / per-sid views lazily on first touch, and
:class:`LazyGraphStore` parses graphs on demand from byte ranges of the
text file.  Worker processes that attach the same sidecar share its
pages.  §IV-C mutations *promote* the mapped index to a plain in-memory
:class:`~repro.core.index.TwoLevelIndex` transparently.

Updates append :class:`DeltaSegment` op journals instead of rewriting
the base arrays; once the accumulated ops exceed ``delta_compact`` ×
base graph count, the next save compacts (full rewrite).  Ops carry the
mutated graphs' transaction text, so replay never depends on the (since
rewritten) graph file, and generation accounting stays deterministic:
every process replaying the same sidecar lands on the same counter —
the freshness token the pool paths compare.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmaplib
import os
import re
import struct
import sys
import zlib
from array import array as _pyarray
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import GraphNotIndexed, IndexCorruptionError, SidecarError, StaleSidecarError
from ..graphs import io as gio
from ..graphs.model import Graph
from ..graphs.star import Star, decompose
from .columnar import ColumnarCatalog, GraphEmbeddings
from .durability import (
    fsync_dir,
    guarded_fsync,
    guarded_replace,
    guarded_truncate,
    guarded_write,
    resolve_fsync_policy,
    resolve_io_plan,
)

try:  # numpy is an optional [perf] extra; everything degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

MAGIC = b"SEGX"
DELTA_MAGIC = b"SEGD"
FORMAT_VERSION = 1
HEADER_SIZE = 256
ALIGNMENT = 64

# magic, version, header_crc, generation, base_generation, source_size,
# source_sha256, meta_off, meta_len, table_off, section_count, delta_off,
# delta_count, delta_bytes, padding to 256.
_HEADER = struct.Struct("<4sIIQQQ32sQQQIQIQ140x")
assert _HEADER.size == HEADER_SIZE

# name (16 bytes, NUL-padded ASCII), offset, length in bytes, CRC32.
_SECTION = struct.Struct("<16sQQI")

# magic "SEGD", op count, payload CRC32, payload length in bytes.
_DELTA = struct.Struct("<4sIIQ")

#: Generation bumps a strict replay of one delta op performs (``update``
#: goes through remove + add, hence two).  The writer sums these so every
#: process replaying the same journal computes the same counter.
_OP_BUMPS = {"add": 1, "remove": 1, "update": 2}

#: Section names, in file order.  Arrays are int64 unless named ``*_blob``.
SECTION_NAMES = (
    "labels_off",
    "labels_blob",
    "gids_off",
    "gids_blob",
    "g_order",
    "g_maxdeg",
    "gs_off",
    "gs_sids",
    "gs_cnts",
    "cat_sids",
    "cat_root",
    "cat_lsize",
    "cat_loff",
    "cat_lids",
    "cat_poff",
    "cat_prows",
    "cat_pfreqs",
    "cat_ref",
    "up_off",
    "up_gids",
    "up_freqs",
    "up_orders",
    "low_perm",
    "size_perm",
)

#: Optional sections: the per-graph label/degree embedding vectors of the
#: ``embed`` filter tier (a label-multiset CSR plus per-graph edge counts;
#: orders are already in ``g_order``).  Written by default, but a sidecar
#: without them still opens — :class:`DiskCatalog` only hard-requires
#: :data:`SECTION_NAMES`, and the engine degrades *loudly* to computing
#: embeddings on the fly from the graph store.
OPTIONAL_SECTION_NAMES = (
    "emb_off",
    "emb_lids",
    "emb_cnts",
    "emb_edges",
)


def default_sidecar_path(graph_path) -> str:
    """The derived sidecar path for *graph_path* (``<file>.segosx``)."""
    return os.fspath(graph_path) + ".segosx"


def file_sha256(path) -> bytes:
    """SHA-256 digest of a file's bytes (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.digest()


# ---------------------------------------------------------------------------
# int64 views: numpy frombuffer, or a cast memoryview under the fallback
# ---------------------------------------------------------------------------

def _int64_view(buffer):
    """A zero-copy int64 sequence over *buffer* (little-endian on disk).

    numpy present: a ``frombuffer`` ndarray view.  Fallback: a
    ``memoryview.cast('q')`` — indexing, slicing, ``len`` and iteration
    all work, which is everything the pure-Python kernels need.  On a
    big-endian host the fallback makes one decoded copy (numpy handles
    the byte order in the dtype).
    """
    if _np is not None:
        return _np.frombuffer(buffer, dtype="<i8")
    view = memoryview(buffer)
    if sys.byteorder == "little":
        return view.cast("q")
    decoded = _pyarray("q")  # pragma: no cover - big-endian hosts only
    decoded.frombytes(view.tobytes())
    decoded.byteswap()
    return decoded


def _pack_int64(values: Sequence[int]) -> bytes:
    """Pack ints as little-endian int64 bytes."""
    packed = _pyarray("q", values)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        packed.byteswap()
    return packed.tobytes()


def _pack_string_table(strings: Sequence[str]) -> Tuple[bytes, bytes]:
    """Encode *strings* as (int64 offsets array, UTF-8 blob) bytes."""
    offsets = [0]
    chunks = []
    total = 0
    for text in strings:
        raw = text.encode("utf-8")
        chunks.append(raw)
        total += len(raw)
        offsets.append(total)
    return _pack_int64(offsets), b"".join(chunks)


# ---------------------------------------------------------------------------
# Header / delta records
# ---------------------------------------------------------------------------

@dataclass
class SidecarHeader:
    """The fixed 256-byte header of a ``.segosx`` sidecar."""

    version: int
    generation: int
    base_generation: int
    source_size: int
    source_sha: bytes
    meta_off: int
    meta_len: int
    table_off: int
    section_count: int
    delta_off: int
    delta_count: int
    delta_bytes: int

    def pack(self) -> bytes:
        """Serialise, computing the CRC over the CRC-zeroed header bytes."""
        def _render(crc: int) -> bytes:
            return _HEADER.pack(
                MAGIC,
                self.version,
                crc,
                self.generation,
                self.base_generation,
                self.source_size,
                self.source_sha,
                self.meta_off,
                self.meta_len,
                self.table_off,
                self.section_count,
                self.delta_off,
                self.delta_count,
                self.delta_bytes,
            )

        return _render(zlib.crc32(_render(0)))

    @classmethod
    def unpack(cls, raw: bytes) -> "SidecarHeader":
        if len(raw) < HEADER_SIZE:
            raise SidecarError("sidecar truncated before the header")
        (
            magic,
            version,
            crc,
            generation,
            base_generation,
            source_size,
            source_sha,
            meta_off,
            meta_len,
            table_off,
            section_count,
            delta_off,
            delta_count,
            delta_bytes,
        ) = _HEADER.unpack(raw[:HEADER_SIZE])
        if magic != MAGIC:
            raise SidecarError(f"bad sidecar magic {magic!r}")
        if version != FORMAT_VERSION:
            raise SidecarError(f"unsupported sidecar format version {version}")
        header = cls(
            version,
            generation,
            base_generation,
            source_size,
            source_sha,
            meta_off,
            meta_len,
            table_off,
            section_count,
            delta_off,
            delta_count,
            delta_bytes,
        )
        if header.pack() != raw[:HEADER_SIZE]:
            raise SidecarError(f"sidecar header CRC mismatch (stored {crc})")
        return header


def read_header(path) -> SidecarHeader:
    """Read and validate just the header of a sidecar file."""
    with open(path, "rb") as handle:
        return SidecarHeader.unpack(handle.read(HEADER_SIZE))


@dataclass(frozen=True)
class DeltaSegment:
    """One append-only journal entry: the net graph ops of one save.

    ``ops`` are per-gid and independent of each other: ``("add", gid,
    text)`` / ``("update", gid, text)`` carry the graph's transaction
    text so replay never depends on the (since rewritten) graph file;
    ``("remove", gid, None)`` needs none — the mapped index already
    knows the graph's star counts.

    ``source_size``/``source_sha`` record the graph file the segment
    brought the sidecar in sync with.  Recovery hangs on them: a complete
    record the header does not cover yet (the writer died between the
    record write and the header rewrite) can be *adopted* when its
    recorded source still matches the text on disk, and a scrub that
    truncates a torn tail can revert the header's freshness token to the
    last surviving segment.  Segments written before this field existed
    carry ``None`` — they still replay, but cannot be adopted.
    """

    generation: int
    ops: Tuple[Tuple[str, str, Optional[str]], ...]
    source_size: Optional[int] = None
    source_sha: Optional[bytes] = None


def replay_generation_bumps(ops: Iterable[Tuple[str, str, Optional[str]]]) -> int:
    """Generation increments a strict replay of *ops* performs."""
    return sum(_OP_BUMPS[kind] for kind, _, _ in ops)


@dataclass(frozen=True)
class DiskHandle:
    """A shippable ``(paths, generation)`` ticket for worker attachment.

    Replaces the pickled engine in both supervised-pool transports: the
    parent sends this tiny handle, the worker re-opens the two files and
    verifies it reconstructed the *same* state — ``disk_generation`` is
    deterministic across processes (base generation + replay bumps), so
    an out-of-band writer is caught by a simple equality check.

    ``local_generation`` is the parent engine's own mutation counter at
    the last sync; the handle is only handed out while the engine still
    sits at it (see ``SegosIndex.disk_handle``).
    """

    graph_path: str
    index_path: str
    local_generation: int
    disk_generation: int
    source_sha: str  # hex
    source_size: int
    delta_count: int
    base_graphs: int
    delta_ops: int


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

def _columnarize(pairs: Sequence[Tuple[str, Graph]]) -> Dict[str, object]:
    """Decompose *pairs* into the canonical column arrays.

    Works purely from the graphs (not from a live index), assigning star
    ids in first-occurrence order — the numbering a rebuild of the same
    serialisation would produce, which keeps the ``(sed, sid)``
    tie-breaks byte-identical between mapped and rebuilt engines.
    """
    sig_to_sid: Dict[str, int] = {}
    stars: List[Star] = []
    refcount: List[int] = []
    upper: List[Dict[int, int]] = []  # sid -> {graph index -> freq}
    orders: List[int] = []
    maxdegs: List[int] = []
    graph_counts: List[List[Tuple[int, int]]] = []
    for gidx, (_, graph) in enumerate(pairs):
        orders.append(graph.order)
        maxdegs.append(graph.max_degree())
        counts: Counter = Counter()
        for star in decompose(graph):
            sid = sig_to_sid.get(star.signature)
            if sid is None:
                sid = len(stars)
                sig_to_sid[star.signature] = sid
                stars.append(star)
                refcount.append(0)
                upper.append({})
            counts[sid] += 1
            refcount[sid] += 1
        graph_counts.append(sorted(counts.items()))
        for sid, freq in counts.items():
            upper[sid][gidx] = freq

    vocabulary = set()
    for star in stars:
        vocabulary.add(star.root)
        vocabulary.update(star.leaves)
    labels = sorted(vocabulary)
    label_to_id = {label: i for i, label in enumerate(labels)}

    root_ids: List[int] = []
    leaf_sizes: List[int] = []
    leaf_offsets = [0]
    leaf_ids: List[int] = []
    per_label: Dict[int, List[Tuple[int, int]]] = {}
    for row, star in enumerate(stars):
        root_ids.append(label_to_id[star.root])
        leaf_sizes.append(star.leaf_size)
        leaf_ids.extend(label_to_id[leaf] for leaf in star.leaves)
        leaf_offsets.append(len(leaf_ids))
        for label, freq in Counter(star.leaves).items():
            per_label.setdefault(label_to_id[label], []).append((row, freq))

    post_offsets = [0]
    post_rows: List[int] = []
    post_freqs: List[int] = []
    for lid in range(len(labels)):
        for row, freq in per_label.get(lid, ()):
            post_rows.append(row)
            post_freqs.append(freq)
        post_offsets.append(len(post_rows))

    # Figure-6 order per label: leaf size asc, frequency desc, sid asc —
    # stored as a permutation of global postings positions.
    low_perm: List[int] = []
    for lid in range(len(labels)):
        lo, hi = post_offsets[lid], post_offsets[lid + 1]
        low_perm.extend(
            sorted(
                range(lo, hi),
                key=lambda i: (leaf_sizes[post_rows[i]], -post_freqs[i], post_rows[i]),
            )
        )
    size_perm = sorted(range(len(stars)), key=lambda row: (leaf_sizes[row], row))

    gid_strings = [str(gid) for gid, _ in pairs]
    up_off = [0]
    up_gids: List[int] = []
    up_freqs: List[int] = []
    up_orders: List[int] = []
    for sid in range(len(stars)):
        postings = sorted(
            upper[sid].items(), key=lambda kv: (orders[kv[0]], gid_strings[kv[0]])
        )
        for gidx, freq in postings:
            up_gids.append(gidx)
            up_freqs.append(freq)
            up_orders.append(orders[gidx])
        up_off.append(len(up_gids))

    gs_off = [0]
    gs_sids: List[int] = []
    gs_cnts: List[int] = []
    for counts_list in graph_counts:
        for sid, freq in counts_list:
            gs_sids.append(sid)
            gs_cnts.append(freq)
        gs_off.append(len(gs_sids))

    # Embedding columns (the ``embed`` tier): per-graph label-multiset CSR
    # + edge counts.  Every vertex label is some star's root label, so the
    # star vocabulary covers the graph multisets.
    emb_off = [0]
    emb_lids: List[int] = []
    emb_cnts: List[int] = []
    emb_edges: List[int] = []
    for _, graph in pairs:
        emb_edges.append(graph.size)
        for label, freq in sorted(Counter(graph.label_multiset()).items()):
            emb_lids.append(label_to_id[label])
            emb_cnts.append(freq)
        emb_off.append(len(emb_lids))

    labels_off, labels_blob = _pack_string_table(labels)
    gids_off, gids_blob = _pack_string_table(gid_strings)
    return {
        "labels_off": labels_off,
        "labels_blob": labels_blob,
        "gids_off": gids_off,
        "gids_blob": gids_blob,
        "g_order": _pack_int64(orders),
        "g_maxdeg": _pack_int64(maxdegs),
        "gs_off": _pack_int64(gs_off),
        "gs_sids": _pack_int64(gs_sids),
        "gs_cnts": _pack_int64(gs_cnts),
        "cat_sids": _pack_int64(range(len(stars))),
        "cat_root": _pack_int64(root_ids),
        "cat_lsize": _pack_int64(leaf_sizes),
        "cat_loff": _pack_int64(leaf_offsets),
        "cat_lids": _pack_int64(leaf_ids),
        "cat_poff": _pack_int64(post_offsets),
        "cat_prows": _pack_int64(post_rows),
        "cat_pfreqs": _pack_int64(post_freqs),
        "cat_ref": _pack_int64(refcount),
        "up_off": _pack_int64(up_off),
        "up_gids": _pack_int64(up_gids),
        "up_freqs": _pack_int64(up_freqs),
        "up_orders": _pack_int64(up_orders),
        "low_perm": _pack_int64(low_perm),
        "size_perm": _pack_int64(size_perm),
        "emb_off": _pack_int64(emb_off),
        "emb_lids": _pack_int64(emb_lids),
        "emb_cnts": _pack_int64(emb_cnts),
        "emb_edges": _pack_int64(emb_edges),
        "_counts": {
            "n_graphs": len(pairs),
            "n_stars": len(stars),
            "n_labels": len(labels),
            "n_leaf_ids": len(leaf_ids),
            "n_postings": len(post_rows),
            "n_upper": len(up_gids),
        },
    }


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def write_sidecar(
    index_path,
    pairs: Sequence[Tuple[str, Graph]],
    *,
    config: Dict[str, object],
    generation: int,
    source_size: int,
    source_sha: bytes,
    embeddings: bool = True,
    fsync_policy: Optional[str] = None,
    fault_plan=None,
) -> None:
    """Write a full (delta-free) sidecar atomically (temp + rename).

    Durability: the temp file is flushed and fsynced (policy-gated)
    before the ``os.replace``, and the directory entry after it — a
    crash at any point leaves either the old sidecar or the new one,
    plus at worst a stray temp file.

    ``embeddings=False`` omits the optional embedding sections — the
    pre-embedding file layout, kept writable so the loud-degradation path
    (and its test) can produce a stale-layout sidecar on demand.
    """
    index_path = os.fspath(index_path)
    policy = resolve_fsync_policy(fsync_policy)
    plan = resolve_io_plan(fault_plan)
    columns = _columnarize(pairs)
    counts = columns.pop("_counts")
    meta = json.dumps(
        {
            "counts": counts,
            "config": config,
            # The base state's own salvage token: a scrub that truncates
            # every delta segment can revert the header's freshness token
            # to the state the sections describe.
            "source": {"size": source_size, "sha": source_sha.hex()},
        },
        sort_keys=True,
    ).encode("utf-8")
    names = SECTION_NAMES + (OPTIONAL_SECTION_NAMES if embeddings else ())

    meta_off = HEADER_SIZE
    table_off = _align(meta_off + len(meta))
    cursor = _align(table_off + _SECTION.size * len(names))
    table_entries = []
    for name in names:
        payload = columns[name]
        table_entries.append((name, cursor, len(payload), zlib.crc32(payload)))
        cursor = _align(cursor + len(payload))
    delta_off = cursor

    header = SidecarHeader(
        version=FORMAT_VERSION,
        generation=generation,
        base_generation=generation,
        source_size=source_size,
        source_sha=source_sha,
        meta_off=meta_off,
        meta_len=len(meta),
        table_off=table_off,
        section_count=len(names),
        delta_off=delta_off,
        delta_count=0,
        delta_bytes=0,
    )

    tmp_path = f"{index_path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as out:
            guarded_write(out, header.pack(), stage="sidecar.header", plan=plan)
            out.write(meta)
            out.write(b"\0" * (table_off - meta_off - len(meta)))
            for name, offset, length, crc in table_entries:
                out.write(_SECTION.pack(name.encode("ascii"), offset, length, crc))
            position = table_off + _SECTION.size * len(table_entries)
            for name, offset, length, _ in table_entries:
                out.write(b"\0" * (offset - position))
                out.write(columns[name])
                position = offset + length
            out.write(b"\0" * (delta_off - position))
            # The whole file must be durable before the rename publishes
            # it — otherwise a crash could leave a named, empty sidecar.
            guarded_fsync(
                out, stage="sidecar.tmp", plan=plan, policy=policy, critical=True
            )
        guarded_replace(tmp_path, index_path, stage="sidecar.replace", plan=plan)
        fsync_dir(index_path, stage="sidecar.dir", plan=plan, policy=policy)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def append_delta(
    index_path,
    ops: Sequence[Tuple[str, str, Optional[str]]],
    *,
    generation: int,
    source_size: int,
    source_sha: bytes,
    fsync_policy: Optional[str] = None,
    fault_plan=None,
) -> None:
    """Append one journal segment and refresh the header in place.

    Ordering contract: the record is written **and flushed/fsynced**
    (policy-gated) before the header rewrite that claims it, so the OS
    can never persist a header covering ``delta_bytes`` it does not have.
    A crash before the barrier leaves the header blind to the partial
    record (``delta_bytes`` bounds every read); a crash after it leaves a
    complete, un-adopted record that recovery salvages by matching its
    recorded source hash against the text (see ``DeltaScan``).  Either
    way: the old or the new state, never wrong answers.

    The payload records the post-append source ``(size, sha)`` — the
    salvage token — alongside the ops.
    """
    index_path = os.fspath(index_path)
    policy = resolve_fsync_policy(fsync_policy)
    plan = resolve_io_plan(fault_plan)
    header = read_header(index_path)
    payload = json.dumps(
        {
            "generation": generation,
            "ops": [list(op) for op in ops],
            "source_size": source_size,
            "source_sha": source_sha.hex(),
        },
        sort_keys=True,
    ).encode("utf-8")
    record = _DELTA.pack(DELTA_MAGIC, len(ops), zlib.crc32(payload), len(payload))
    with open(index_path, "r+b") as out:
        out.seek(header.delta_off + header.delta_bytes)
        guarded_write(out, record + payload, stage="delta.record", plan=plan)
        # The ordering barrier (the satellite bug this PR fixes): without
        # it, record and header share one unflushed userspace buffer and
        # the kernel may persist the new header first.
        guarded_fsync(
            out, stage="delta.record", plan=plan, policy=policy, critical=True
        )
        header.generation = generation
        header.source_size = source_size
        header.source_sha = source_sha
        header.delta_count += 1
        header.delta_bytes += len(record) + len(payload)
        out.seek(0)
        guarded_write(out, header.pack(), stage="delta.header", plan=plan)
        # Trailing hardening only: losing this sync costs tail freshness
        # (salvage re-adopts the record), never consistency.
        guarded_fsync(
            out, stage="delta.header", plan=plan, policy=policy, critical=False
        )


# ---------------------------------------------------------------------------
# Delta-record parsing, torn-tail scanning, and scrub
# ---------------------------------------------------------------------------

def _parse_delta_record(buf, cursor: int, limit: int) -> Tuple[DeltaSegment, int]:
    """Parse one ``SEGD`` record at *cursor*; returns ``(segment, end)``.

    Raises :class:`SidecarError` unless the bytes at *cursor* form a
    complete, CRC-valid, self-consistent record ending at or before
    *limit*.  Shared by the strict reader (:meth:`DiskCatalog.delta_segments`)
    and the tolerant recovery scanner (:func:`scan_delta_region`).
    """
    if cursor + _DELTA.size > limit:
        raise SidecarError("delta journal truncated")
    magic, op_count, crc, length = _DELTA.unpack_from(buf, cursor)
    if magic != DELTA_MAGIC:
        raise SidecarError(f"bad delta magic {magic!r}")
    cursor += _DELTA.size
    if cursor + length > limit:
        raise SidecarError("delta payload truncated")
    payload = bytes(buf[cursor : cursor + length])
    cursor += length
    if zlib.crc32(payload) != crc:
        raise SidecarError("delta payload CRC mismatch")
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SidecarError(f"malformed delta payload: {exc}") from exc
    ops = tuple(
        (op[0], op[1], op[2] if len(op) > 2 else None) for op in decoded["ops"]
    )
    if len(ops) != op_count or any(kind not in _OP_BUMPS for kind, _, _ in ops):
        raise SidecarError("delta op list inconsistent with its record")
    sha_hex = decoded.get("source_sha")
    segment = DeltaSegment(
        int(decoded["generation"]),
        ops,
        source_size=(
            int(decoded["source_size"]) if "source_size" in decoded else None
        ),
        source_sha=bytes.fromhex(sha_hex) if sha_hex else None,
    )
    return segment, cursor


@dataclass
class DeltaScan:
    """A tolerant walk of the whole delta region, for crash recovery.

    ``covered`` is the valid record prefix inside the header-claimed
    region (``covered_ok`` when it accounts for *exactly* the claimed
    bytes and count).  ``tail`` holds complete, CRC-valid records found
    *beyond* the claimed region — the signature of a writer killed between
    the record write and the header rewrite; ``tail_ends`` gives each tail
    record's absolute end offset so a repair can adopt a prefix of them.
    ``valid_end`` is one past the last valid record anywhere; anything
    between it and the file end is torn garbage (``torn_bytes``).
    """

    covered: List[DeltaSegment]
    covered_ok: bool
    covered_end: int
    tail: List[DeltaSegment]
    tail_ends: List[int]
    valid_end: int
    torn_bytes: int
    problems: List[str]


def scan_delta_region(buf, header: SidecarHeader, file_size: int) -> DeltaScan:
    """Walk the delta region tolerantly: valid prefix, salvageable tail.

    Never raises on torn bytes — recovery needs the report, not the
    exception.  *buf* may be the raw file bytes or the open mmap.
    """
    problems: List[str] = []
    covered: List[DeltaSegment] = []
    cursor = header.delta_off
    claimed_end = header.delta_off + header.delta_bytes
    covered_ok = True
    while len(covered) < header.delta_count:
        try:
            segment, cursor = _parse_delta_record(
                buf, cursor, min(claimed_end, file_size)
            )
        except SidecarError as exc:
            covered_ok = False
            problems.append(
                f"torn delta record inside the header-claimed region "
                f"(segment {len(covered) + 1} of {header.delta_count}): {exc}"
            )
            break
        covered.append(segment)
    if covered_ok and cursor != claimed_end:
        covered_ok = False
        problems.append(
            f"header claims {header.delta_bytes} delta bytes but its "
            f"{header.delta_count} record(s) end {claimed_end - cursor} "
            f"byte(s) early"
        )
    covered_end = cursor
    tail: List[DeltaSegment] = []
    tail_ends: List[int] = []
    valid_end = covered_end
    if covered_ok:
        cursor = claimed_end
        valid_end = claimed_end
        while cursor < file_size:
            try:
                segment, cursor = _parse_delta_record(buf, cursor, file_size)
            except SidecarError:
                break
            tail.append(segment)
            tail_ends.append(cursor)
            valid_end = cursor
        if tail:
            problems.append(
                f"{len(tail)} complete delta record(s) beyond the header "
                f"(writer died before the header rewrite)"
            )
    torn_bytes = file_size - valid_end
    if torn_bytes:
        problems.append(
            f"{torn_bytes} torn byte(s) past the last valid delta record"
        )
    return DeltaScan(
        covered,
        covered_ok,
        covered_end,
        tail,
        tail_ends,
        valid_end,
        torn_bytes,
        problems,
    )


def adoptable_tail(scan: DeltaScan) -> List[DeltaSegment]:
    """The tail prefix that recovery may adopt: records carrying the
    source ``(size, sha)`` salvage token (legacy records without one
    cannot vouch for the header's freshness, so adoption stops there)."""
    adopted: List[DeltaSegment] = []
    for segment in scan.tail:
        if segment.source_sha is None or segment.source_size is None:
            break
        adopted.append(segment)
    return adopted


@dataclass
class ScrubReport:
    """What ``scrub_sidecar`` found and what it did (or would do).

    ``problems`` lists every inconsistency found; ``actions`` the repairs
    — performed when ``repaired`` is set, proposed otherwise.  ``fatal``
    means in-place repair cannot help (header or section payloads are
    gone): rebuild with ``repro index build``.
    """

    path: str
    problems: List[str]
    actions: List[str]
    repaired: bool = False
    fatal: bool = False

    @property
    def clean(self) -> bool:
        return not self.problems


def _rebuild_action() -> str:
    return "rebuild the sidecar from the text (repro index build)"


def scrub_sidecar(
    path,
    *,
    repair: bool = False,
    fsync_policy: Optional[str] = None,
    fault_plan=None,
) -> ScrubReport:
    """Audit (and with ``repair=True``, fix in place) one sidecar file.

    Checks the header CRC, meta/table/section bounds, every section CRC,
    and the delta journal.  Repairable damage — torn delta tails, orphan
    records a crashed append left beyond the header — is fixed *in place*:
    complete tail records whose salvage token is intact are adopted into
    the header, torn bytes are truncated, and the header's generation and
    freshness token are reverted to the last surviving segment (or the
    base state recorded in the meta block).  The repair sequence is
    crash-safe itself: surviving data is fsynced before the header vouches
    for it, and the header is corrected before garbage is truncated, so a
    scrub killed midway leaves a state a second scrub (or plain load)
    still handles.
    """
    path = os.fspath(path)
    policy = resolve_fsync_policy(fsync_policy)
    plan = resolve_io_plan(fault_plan)
    problems: List[str] = []
    actions: List[str] = []
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return ScrubReport(path, [f"unreadable: {exc}"], [], fatal=True)
    size = len(raw)
    try:
        header = SidecarHeader.unpack(raw)
    except SidecarError as exc:
        return ScrubReport(
            path, [f"header: {exc}"], [_rebuild_action()], fatal=True
        )

    fatal = False
    if header.meta_off + header.meta_len > size:
        problems.append("meta block extends past end of file")
        fatal = True
    if header.table_off + header.section_count * _SECTION.size > size:
        problems.append("section table extends past end of file")
        fatal = True
    meta = None
    if not fatal:
        try:
            meta = json.loads(
                raw[header.meta_off : header.meta_off + header.meta_len].decode(
                    "utf-8"
                )
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            problems.append(f"malformed meta block: {exc}")
            fatal = True
    if not fatal:
        for i in range(header.section_count):
            start = header.table_off + i * _SECTION.size
            raw_name, offset, length, crc = _SECTION.unpack_from(raw, start)
            name = raw_name.rstrip(b"\0").decode("ascii", "replace")
            if offset + length > size:
                problems.append(f"section {name!r} extends past end of file")
                fatal = True
            elif zlib.crc32(raw[offset : offset + length]) != crc:
                problems.append(
                    f"section {name!r}: CRC mismatch (stored {crc})"
                )
                fatal = True
    if fatal:
        return ScrubReport(path, problems, [_rebuild_action()], fatal=True)

    scan = scan_delta_region(raw, header, size)
    problems.extend(scan.problems)
    if not problems:
        return ScrubReport(path, [], [])

    # Desired end state: header covering covered-prefix + adoptable tail,
    # file truncated after the last kept record.
    adopted = adoptable_tail(scan)
    if scan.covered_ok:
        kept = scan.covered + adopted
        new_end = scan.tail_ends[len(adopted) - 1] if adopted else scan.covered_end
    else:
        kept = list(scan.covered)
        new_end = scan.covered_end
    new_header = SidecarHeader(**{
        f: getattr(header, f) for f in (
            "version",
            "generation",
            "base_generation",
            "source_size",
            "source_sha",
            "meta_off",
            "meta_len",
            "table_off",
            "section_count",
            "delta_off",
            "delta_count",
            "delta_bytes",
        )
    })
    new_header.delta_count = len(kept)
    new_header.delta_bytes = new_end - header.delta_off
    if kept:
        last = kept[-1]
        new_header.generation = last.generation
        if last.source_sha is not None and last.source_size is not None:
            new_header.source_size = last.source_size
            new_header.source_sha = last.source_sha
        elif len(kept) != header.delta_count:
            # Reverting to a legacy segment that recorded no salvage
            # token: the freshness claim is unknowable, so poison it —
            # the next load degrades to a rebuild instead of trusting it.
            new_header.source_size = 0
            new_header.source_sha = b"\0" * 32
            problems.append(
                "recovered state predates the salvage token; freshness "
                "poisoned, next load rebuilds"
            )
    else:
        new_header.generation = header.base_generation
        base_source = (meta or {}).get("source") or {}
        if base_source.get("sha"):
            new_header.source_size = int(base_source["size"])
            new_header.source_sha = bytes.fromhex(base_source["sha"])
        elif header.delta_count:
            new_header.source_size = 0
            new_header.source_sha = b"\0" * 32
            problems.append(
                "base state records no salvage token; freshness poisoned, "
                "next load rebuilds"
            )

    header_changed = new_header.pack() != header.pack()
    if adopted:
        actions.append(
            f"adopt {len(adopted)} recovered delta record(s) into the header "
            f"(generation {header.generation} -> {new_header.generation})"
        )
    if not scan.covered_ok:
        actions.append(
            f"revert the header to the last intact segment "
            f"(generation {header.generation} -> {new_header.generation}, "
            f"{header.delta_count} -> {new_header.delta_count} segment(s))"
        )
    if new_end < size:
        actions.append(f"truncate {size - new_end} torn byte(s) at offset {new_end}")

    if not repair:
        return ScrubReport(path, problems, actions)

    with open(path, "r+b") as out:
        # Everything the new header vouches for must be durable first.
        guarded_fsync(out, stage="scrub.data", plan=plan, policy=policy, critical=True)
        if header_changed:
            out.seek(0)
            guarded_write(out, new_header.pack(), stage="scrub.header", plan=plan)
            guarded_fsync(
                out, stage="scrub.header", plan=plan, policy=policy, critical=True
            )
        if new_end < size:
            # Header first, truncate second: a crash in between leaves
            # benign garbage beyond the (already-corrected) header.
            guarded_truncate(out, new_end, stage="scrub.truncate", plan=plan)
            guarded_fsync(
                out, stage="scrub.truncate", plan=plan, policy=policy, critical=False
            )
    return ScrubReport(path, problems, actions, repaired=True)


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

class DiskCatalog:
    """A memory-mapped, read-only view of one ``.segosx`` sidecar.

    Sections come back as zero-copy int64 views (:meth:`ints`) or raw
    ``memoryview`` slices (:meth:`blob`); string tables decode lazily and
    cache.  Section CRCs are *not* verified on open (that would fault in
    every page, defeating the lazy mmap) — run :meth:`verify_checksums`
    (``repro index inspect --verify``) for an integrity audit.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        try:
            self._mmap = _mmaplib.mmap(self._file.fileno(), 0, access=_mmaplib.ACCESS_READ)
        except ValueError as exc:  # empty file cannot be mapped
            self._file.close()
            raise SidecarError(f"cannot map sidecar {self.path!r}: {exc}") from exc
        try:
            self.header = SidecarHeader.unpack(self._mmap[:HEADER_SIZE])
            # Bound every header-claimed region against the actual file
            # size *before* dereferencing it: a short or corrupt file must
            # surface as SidecarError (-> rebuild), never a raw
            # struct.error from unpacking past EOF.
            size = len(self._mmap)
            if self.header.meta_off + self.header.meta_len > size:
                raise SidecarError("sidecar meta block extends past end of file")
            if (
                self.header.table_off + self.header.section_count * _SECTION.size
                > size
            ):
                raise SidecarError("sidecar section table extends past end of file")
            if self.header.delta_off + self.header.delta_bytes > size:
                raise SidecarError("sidecar delta region extends past end of file")
            meta_raw = bytes(
                self._mmap[self.header.meta_off : self.header.meta_off + self.header.meta_len]
            )
            try:
                self.meta = json.loads(meta_raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise SidecarError(f"malformed sidecar meta block: {exc}") from exc
            self._sections: Dict[str, Tuple[int, int, int]] = {}
            for i in range(self.header.section_count):
                start = self.header.table_off + i * _SECTION.size
                raw_name, offset, length, crc = _SECTION.unpack_from(self._mmap, start)
                name = raw_name.rstrip(b"\0").decode("ascii")
                if offset + length > len(self._mmap):
                    raise SidecarError(f"section {name!r} extends past end of file")
                self._sections[name] = (offset, length, crc)
            missing = [n for n in SECTION_NAMES if n not in self._sections]
            if missing:
                raise SidecarError(f"sidecar missing sections {missing}")
        except Exception:
            self.close()
            raise
        self._ints_cache: Dict[str, object] = {}
        self._labels: Optional[List[str]] = None
        self._label_to_id: Optional[Dict[str, int]] = None
        self._gids: Optional[List[str]] = None
        self._gid_index: Optional[Dict[str, int]] = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "DiskCatalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Best-effort close; a map with exported views stays alive."""
        try:
            self._mmap.close()
        except (BufferError, ValueError):
            pass
        try:
            self._file.close()
        except OSError:  # pragma: no cover - defensive
            pass

    # -- counts / meta -------------------------------------------------
    @property
    def n_graphs(self) -> int:
        return int(self.meta["counts"]["n_graphs"])

    @property
    def n_stars(self) -> int:
        return int(self.meta["counts"]["n_stars"])

    @property
    def n_labels(self) -> int:
        return int(self.meta["counts"]["n_labels"])

    def config(self) -> Dict[str, object]:
        """The engine config knobs recorded at write time."""
        return dict(self.meta.get("config", {}))

    def is_fresh(self, source_path) -> bool:
        """True when the graph file still matches the recorded size+hash."""
        try:
            if os.path.getsize(source_path) != self.header.source_size:
                return False
            return file_sha256(source_path) == self.header.source_sha
        except OSError:
            return False

    # -- raw access ----------------------------------------------------
    def blob(self, name: str) -> memoryview:
        offset, length, _ = self._sections[name]
        return memoryview(self._mmap)[offset : offset + length]

    def ints(self, name: str):
        view = self._ints_cache.get(name)
        if view is None:
            view = self._ints_cache[name] = _int64_view(self.blob(name))
        return view

    def _strings(self, offsets_name: str, blob_name: str) -> List[str]:
        offsets = self.ints(offsets_name)
        blob = self.blob(blob_name)
        return [
            bytes(blob[int(offsets[i]) : int(offsets[i + 1])]).decode("utf-8")
            for i in range(len(offsets) - 1)
        ]

    def labels(self) -> List[str]:
        if self._labels is None:
            self._labels = self._strings("labels_off", "labels_blob")
        return self._labels

    def label_to_id(self) -> Dict[str, int]:
        if self._label_to_id is None:
            self._label_to_id = {label: i for i, label in enumerate(self.labels())}
        return self._label_to_id

    def gid_list(self) -> List[str]:
        if self._gids is None:
            self._gids = self._strings("gids_off", "gids_blob")
        return self._gids

    def gid_index(self) -> Dict[str, int]:
        if self._gid_index is None:
            self._gid_index = {gid: i for i, gid in enumerate(self.gid_list())}
        return self._gid_index

    # -- deltas --------------------------------------------------------
    def delta_segments(self) -> List[DeltaSegment]:
        """Parse the journal region (bounded by the header's byte count)."""
        segments: List[DeltaSegment] = []
        cursor = self.header.delta_off
        end = self.header.delta_off + self.header.delta_bytes
        for _ in range(self.header.delta_count):
            segment, cursor = _parse_delta_record(self._mmap, cursor, end)
            segments.append(segment)
        return segments

    def salvage_scan(self) -> DeltaScan:
        """Tolerant scan of the whole delta region (for crash recovery)."""
        return scan_delta_region(self._mmap, self.header, len(self._mmap))

    def total_delta_ops(self) -> int:
        return sum(len(segment.ops) for segment in self.delta_segments())

    # -- integrity -----------------------------------------------------
    def verify_checksums(self) -> List[str]:
        """Full CRC audit; returns human-readable problems (empty = clean)."""
        problems: List[str] = []
        for name, (offset, length, crc) in self._sections.items():
            actual = zlib.crc32(self._mmap[offset : offset + length])
            if actual != crc:
                problems.append(
                    f"section {name!r}: CRC mismatch (stored {crc}, actual {actual})"
                )
        try:
            self.delta_segments()
        except SidecarError as exc:
            problems.append(f"delta journal: {exc}")
        return problems

    # -- columnar snapshot --------------------------------------------
    def columnar(self, generation: int) -> ColumnarCatalog:
        """Zero-copy :class:`ColumnarCatalog` over the mapped columns."""
        n = self.n_stars
        return ColumnarCatalog.from_mmap(
            generation,
            self.ints("cat_sids"),
            self.ints("cat_root"),
            self.ints("cat_lsize"),
            self.ints("cat_loff"),
            self.ints("cat_lids"),
            self.ints("cat_poff"),
            self.ints("cat_prows"),
            self.ints("cat_pfreqs"),
            self.label_to_id(),
            n - 1 if n else 0,
        )

    # -- graph embeddings ---------------------------------------------
    def has_section(self, name: str) -> bool:
        """True when an (optional) section is present in this sidecar."""
        return name in self._sections

    def has_embeddings(self) -> bool:
        """True when every ``embed``-tier section is present."""
        return all(name in self._sections for name in OPTIONAL_SECTION_NAMES)

    def embedding_bytes(self) -> int:
        """Total payload bytes of the embedding sections (0 when absent)."""
        return sum(
            self._sections[name][1]
            for name in OPTIONAL_SECTION_NAMES
            if name in self._sections
        )

    def embeddings(self, generation: int) -> GraphEmbeddings:
        """Zero-copy :class:`GraphEmbeddings` over the mapped columns.

        Raises ``KeyError`` when the sidecar predates the embedding
        sections — callers check :meth:`has_embeddings` first and degrade
        to an on-the-fly build.
        """
        return GraphEmbeddings.from_mmap(
            generation,
            self.gid_list(),
            self.ints("g_order"),
            self.ints("emb_edges"),
            self.ints("emb_off"),
            self.ints("emb_lids"),
            self.ints("emb_cnts"),
            self.label_to_id(),
        )


# ---------------------------------------------------------------------------
# Lazy graph store (text-file byte ranges, parse on demand)
# ---------------------------------------------------------------------------

_GRAPH_HEADER_RE = re.compile(rb"^t[ \t]+(?:#[ \t]+)?(\S+)", re.MULTILINE)


def scan_graph_ranges(data) -> "Dict[str, Tuple[int, int]]":
    """gid → (start, end) byte ranges of each ``t``-block in *data*.

    A light single regex pass over the mapped bytes — the same order of
    work as the SHA-256 freshness check, far below a full parse.
    """
    ranges: Dict[str, Tuple[int, int]] = {}
    matches = list(_GRAPH_HEADER_RE.finditer(data))
    for i, match in enumerate(matches):
        start = match.start()
        end = matches[i + 1].start() if i + 1 < len(matches) else len(data)
        ranges[match.group(1).decode("utf-8")] = (start, end)
    return ranges


class LazyGraphStore(MutableMapping):
    """``gid → Graph`` over a mapped transaction file, parsed on demand.

    Base entries come from byte ranges of the graph file (found by
    :func:`scan_graph_ranges`); nothing is parsed until a query actually
    touches a graph, and the parse result is cached.  Mutations go to an
    overlay (additions/re-additions) and a tombstone set (removals) with
    plain-dict ordering semantics, so an engine holding this store
    behaves exactly like one holding a ``dict``.

    Pickling materialises every live graph — the store degrades to a
    plain in-memory mapping on the other side, which is precisely what
    the legacy pickle-the-engine transport needs.
    """

    def __init__(
        self,
        text_path,
        *,
        base_gids: Optional[Sequence[str]] = None,
        expected_sha: Optional[bytes] = None,
    ) -> None:
        self._path = os.fspath(text_path)
        with open(self._path, "rb") as handle:
            self._data: bytes = handle.read()
        if expected_sha is not None:
            found_sha = hashlib.sha256(self._data).digest()
            if found_sha != expected_sha:
                raise StaleSidecarError(
                    f"graph file {self._path!r} changed since the index was written",
                    path=self._path,
                    expected_sha=expected_sha,
                    found_sha=found_sha,
                )
        self._ranges = scan_graph_ranges(self._data)
        base = list(base_gids) if base_gids is not None else list(self._ranges)
        self._base: Dict[str, None] = dict.fromkeys(base)
        self._cache: Dict[str, Graph] = {}
        self._overlay: Dict[object, Graph] = {}
        self._removed: set = set()

    # -- parsing -------------------------------------------------------
    def parse_from_text(self, gid: str) -> Graph:
        """Parse *gid*'s block from the text bytes (uncached)."""
        span = self._ranges.get(gid)
        if span is None:
            raise StaleSidecarError(
                f"graph {gid!r} is indexed in the sidecar but absent from the text",
                path=self._path,
            )
        parsed = gio.loads(self._data[span[0] : span[1]].decode("utf-8"))
        if len(parsed) != 1 or parsed[0][0] != gid:
            raise StaleSidecarError(
                f"byte range for graph {gid!r} is inconsistent", path=self._path
            )
        return parsed[0][1]

    # -- MutableMapping ------------------------------------------------
    def __getitem__(self, gid: object) -> Graph:
        if gid in self._overlay:
            return self._overlay[gid]
        if gid in self._base and gid not in self._removed:
            graph = self._cache.get(gid)
            if graph is None:
                graph = self._cache[gid] = self.parse_from_text(gid)
            return graph
        raise KeyError(gid)

    def __setitem__(self, gid: object, graph: Graph) -> None:
        self._removed.discard(gid)
        self._overlay.pop(gid, None)  # re-insertion moves the key to the end
        self._overlay[gid] = graph

    def __delitem__(self, gid: object) -> None:
        if gid in self._overlay:
            del self._overlay[gid]
        elif gid in self._base and gid not in self._removed:
            self._removed.add(gid)
            self._cache.pop(gid, None)
        else:
            raise KeyError(gid)

    def __contains__(self, gid: object) -> bool:  # no parse for membership
        if gid in self._overlay:
            return True
        return gid in self._base and gid not in self._removed

    def __iter__(self) -> Iterator[object]:
        for gid in self._base:
            if gid not in self._removed and gid not in self._overlay:
                yield gid
        yield from self._overlay

    def __len__(self) -> int:
        hidden = sum(
            1 for gid in self._overlay if gid in self._base and gid not in self._removed
        )
        removed = sum(1 for gid in self._removed if gid in self._base)
        return len(self._base) - removed - hidden + len(self._overlay)

    # -- pickling ------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        return {"graphs": dict(self.items())}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._path = ""
        self._data = b""
        self._ranges = {}
        self._base = {}
        self._cache = {}
        self._overlay = dict(state["graphs"])
        self._removed = set()


# ---------------------------------------------------------------------------
# Mapped two-level index
# ---------------------------------------------------------------------------

class _MappedCatalog:
    """Star-catalog facade: lazy Star materialisation over the columns."""

    def __init__(self, owner: "MappedTwoLevelIndex") -> None:
        self._owner = owner
        self._stars: Dict[int, Star] = {}
        self._sig_to_sid: Optional[Dict[str, int]] = None

    def __len__(self) -> int:
        inner = self._owner._inner
        if inner is not None:
            return len(inner.catalog)
        return self._owner._disk.n_stars

    def star(self, sid: int) -> Star:
        inner = self._owner._inner
        if inner is not None:
            return inner.catalog.star(sid)
        star = self._stars.get(sid)
        if star is None:
            disk = self._owner._disk
            if not 0 <= sid < disk.n_stars:
                raise IndexCorruptionError(f"star id {sid} is not live")
            labels = disk.labels()
            loff = disk.ints("cat_loff")
            lids = disk.ints("cat_lids")
            leaves = [
                labels[int(lids[i])]
                for i in range(int(loff[sid]), int(loff[sid + 1]))
            ]
            star = self._stars[sid] = Star(
                labels[int(disk.ints("cat_root")[sid])], leaves
            )
        return star

    def sid(self, star: Star) -> Optional[int]:
        inner = self._owner._inner
        if inner is not None:
            return inner.catalog.sid(star)
        if self._sig_to_sid is None:
            self._sig_to_sid = {
                self.star(row).signature: row
                for row in range(self._owner._disk.n_stars)
            }
        return self._sig_to_sid.get(star.signature)

    def live_sids(self) -> List[int]:
        inner = self._owner._inner
        if inner is not None:
            return inner.catalog.live_sids()
        return list(range(self._owner._disk.n_stars))

    # Mutation primitives are only ever driven by TwoLevelIndex itself;
    # reaching them through the facade promotes first.
    def acquire(self, star: Star, count: int = 1):
        return self._owner._materialize().catalog.acquire(star, count)

    def release(self, sid: int, count: int = 1):
        return self._owner._materialize().catalog.release(sid, count)


class _MappedUpper:
    """Upper-level facade: per-sid postings materialised lazily."""

    def __init__(self, owner: "MappedTwoLevelIndex") -> None:
        self._owner = owner
        self._postings: Dict[int, List] = {}

    def __contains__(self, sid: int) -> bool:
        inner = self._owner._inner
        if inner is not None:
            return sid in inner.upper
        return 0 <= sid < self._owner._disk.n_stars

    def sids(self):
        inner = self._owner._inner
        if inner is not None:
            return inner.upper.sids()
        return range(self._owner._disk.n_stars)

    def _entries(self, sid: int) -> List:
        from ..core.index import UpperEntry

        entries = self._postings.get(sid)
        if entries is None:
            disk = self._owner._disk
            off = disk.ints("up_off")
            gids = disk.ints("up_gids")
            freqs = disk.ints("up_freqs")
            orders = disk.ints("up_orders")
            gid_list = disk.gid_list()
            entries = self._postings[sid] = [
                UpperEntry(gid_list[int(gids[i])], int(freqs[i]), int(orders[i]))
                for i in range(int(off[sid]), int(off[sid + 1]))
            ]
        return entries

    def postings(self, sid: int) -> List:
        inner = self._owner._inner
        if inner is not None:
            return inner.upper.postings(sid)
        if not 0 <= sid < self._owner._disk.n_stars:
            return []
        return list(self._entries(sid))

    def split_by_order(self, sid: int, order: int):
        inner = self._owner._inner
        if inner is not None:
            return inner.upper.split_by_order(sid, order)
        if not 0 <= sid < self._owner._disk.n_stars:
            return [], []
        entries = self._entries(sid)
        cut = bisect_right([e.order for e in entries], order)
        return list(entries[:cut]), list(entries[cut:])

    def stats(self) -> Tuple[int, int]:
        inner = self._owner._inner
        if inner is not None:
            return inner.upper.stats()
        disk = self._owner._disk
        return disk.n_stars, len(disk.ints("up_gids"))


class _MappedLower:
    """Lower-level facade: Figure-6 label lists + the size list."""

    def __init__(self, owner: "MappedTwoLevelIndex") -> None:
        self._owner = owner
        self._label_lists: Dict[str, List] = {}
        self._size_entries: Optional[List] = None
        self._label_count: Optional[int] = None

    def _span(self, label: str) -> Optional[Tuple[int, int]]:
        disk = self._owner._disk
        lid = disk.label_to_id().get(label)
        if lid is None:
            return None
        poff = disk.ints("cat_poff")
        lo, hi = int(poff[lid]), int(poff[lid + 1])
        return (lo, hi) if hi > lo else None

    def labels(self):
        inner = self._owner._inner
        if inner is not None:
            return inner.lower.labels()
        return [label for label in self._owner._disk.labels() if self._span(label)]

    def label_list(self, label: str) -> List:
        inner = self._owner._inner
        if inner is not None:
            return inner.lower.label_list(label)
        entries = self._label_lists.get(label)
        if entries is None:
            from ..core.index import LowerEntry

            span = self._span(label)
            if span is None:
                return []
            disk = self._owner._disk
            perm = disk.ints("low_perm")
            prows = disk.ints("cat_prows")
            pfreqs = disk.ints("cat_pfreqs")
            lsize = disk.ints("cat_lsize")
            entries = self._label_lists[label] = [
                LowerEntry(
                    int(prows[int(perm[i])]),
                    int(pfreqs[int(perm[i])]),
                    int(lsize[int(prows[int(perm[i])])]),
                )
                for i in range(span[0], span[1])
            ]
        return list(entries)

    def label_postings_count(self, label: str) -> int:
        inner = self._owner._inner
        if inner is not None:
            return inner.lower.label_postings_count(label)
        span = self._span(label)
        return span[1] - span[0] if span else 0

    def split_label_list(self, label: str, leaf_size: int):
        inner = self._owner._inner
        if inner is not None:
            return inner.lower.split_label_list(label, leaf_size)
        entries = self.label_list(label)
        groups: List[List] = []
        for entry in entries:
            if groups and groups[-1][0].leaf_size == entry.leaf_size:
                groups[-1].append(entry)
            else:
                groups.append([entry])
        boundary = bisect_right([g[0].leaf_size for g in groups], leaf_size)
        return groups[:boundary], groups[boundary:]

    def _size_list(self) -> List:
        if self._size_entries is None:
            from ..core.index import LowerEntry

            disk = self._owner._disk
            perm = disk.ints("size_perm")
            lsize = disk.ints("cat_lsize")
            self._size_entries = [
                LowerEntry(int(sid), 0, int(lsize[int(sid)])) for sid in perm
            ]
        return self._size_entries

    def split_size_list(self, leaf_size: int):
        inner = self._owner._inner
        if inner is not None:
            return inner.lower.split_size_list(leaf_size)
        entries = self._size_list()
        cut = bisect_right([e.leaf_size for e in entries], leaf_size)
        low = list(entries[:cut])
        low.reverse()
        return low, list(entries[cut:])

    def stats(self) -> Tuple[int, int]:
        inner = self._owner._inner
        if inner is not None:
            return inner.lower.stats()
        disk = self._owner._disk
        if self._label_count is None:
            poff = disk.ints("cat_poff")
            self._label_count = sum(
                1
                for lid in range(disk.n_labels)
                if int(poff[lid + 1]) > int(poff[lid])
            )
        return self._label_count, len(disk.ints("cat_prows")) + disk.n_stars


class MappedTwoLevelIndex:
    """A read-optimised two-level index backed by a mapped sidecar.

    Presents the exact surface of :class:`~repro.core.index.TwoLevelIndex`
    (catalog / upper / lower facades, graph metadata, the generation
    counter, the three mutators) but starts fully *mapped*: reads
    materialise only the views they touch.  The first §IV-C mutation
    **promotes** the whole structure to a plain in-memory
    ``TwoLevelIndex`` built straight from the arrays — no text parsing —
    after which every call delegates.  Promotion is invisible:
    identical answers before and after.
    """

    def __init__(self, disk: DiskCatalog) -> None:
        self._disk = disk
        self._inner = None  # type: Optional[object]
        self._generation = disk.header.base_generation
        self.catalog = _MappedCatalog(self)
        self.upper = _MappedUpper(self)
        self.lower = _MappedLower(self)
        self._counts_cache: Dict[object, Counter] = {}
        self._max_degree: Optional[int] = None

    # -- generation ----------------------------------------------------
    @property
    def generation(self) -> int:
        inner = self._inner
        return inner.generation if inner is not None else self._generation

    @generation.setter
    def generation(self, value: int) -> None:
        inner = self._inner
        if inner is not None:
            inner.generation = value
        else:
            self._generation = value

    @property
    def promoted(self) -> bool:
        """True once a mutation has forced full materialisation."""
        return self._inner is not None

    # -- promotion -----------------------------------------------------
    def _materialize(self):
        """Build the in-memory index from the arrays (idempotent)."""
        if self._inner is None:
            from ..core.index import (
                GraphMeta,
                LowerEntry,
                TwoLevelIndex,
                UpperEntry,
                _LazySortedList,
                _lower_sort_key,
                _upper_sort_key,
            )

            disk = self._disk
            n = disk.n_stars
            index = TwoLevelIndex()
            index.generation = self._generation

            stars = [self.catalog.star(sid) for sid in range(n)]
            catalog = index.catalog
            catalog._stars = list(stars)
            catalog._refcount = [int(c) for c in disk.ints("cat_ref")]
            catalog._sid_by_signature = {
                star.signature: sid for sid, star in enumerate(stars)
            }

            off = disk.ints("up_off")
            up_gids = disk.ints("up_gids")
            up_freqs = disk.ints("up_freqs")
            up_orders = disk.ints("up_orders")
            gid_list = disk.gid_list()
            for sid in range(n):
                postings = _LazySortedList(key=_upper_sort_key)
                for i in range(int(off[sid]), int(off[sid + 1])):
                    gid = gid_list[int(up_gids[i])]
                    postings.data[gid] = UpperEntry(
                        gid, int(up_freqs[i]), int(up_orders[i])
                    )
                index.upper._lists[sid] = postings

            poff = disk.ints("cat_poff")
            prows = disk.ints("cat_prows")
            pfreqs = disk.ints("cat_pfreqs")
            lsize = disk.ints("cat_lsize")
            for lid, label in enumerate(disk.labels()):
                lo, hi = int(poff[lid]), int(poff[lid + 1])
                if lo == hi:
                    continue
                postings = _LazySortedList(key=_lower_sort_key)
                for i in range(lo, hi):
                    sid = int(prows[i])
                    postings.data[sid] = LowerEntry(
                        sid, int(pfreqs[i]), int(lsize[sid])
                    )
                index.lower._lists[label] = postings
            for sid in range(n):
                index.lower._size_list.data[sid] = LowerEntry(sid, 0, int(lsize[sid]))

            gs_off = disk.ints("gs_off")
            gs_sids = disk.ints("gs_sids")
            gs_cnts = disk.ints("gs_cnts")
            g_order = disk.ints("g_order")
            g_maxdeg = disk.ints("g_maxdeg")
            for gidx, gid in enumerate(gid_list):
                counts: Counter = Counter()
                for i in range(int(gs_off[gidx]), int(gs_off[gidx + 1])):
                    counts[int(gs_sids[i])] = int(gs_cnts[i])
                index._graph_stars[gid] = counts
                index._meta[gid] = GraphMeta(int(g_order[gidx]), int(g_maxdeg[gidx]))
                index._max_degree_hist[int(g_maxdeg[gidx])] += 1

            self._inner = index
        return self._inner

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        inner = self._inner
        if inner is not None:
            return len(inner)
        return self._disk.n_graphs

    def __contains__(self, gid: object) -> bool:
        inner = self._inner
        if inner is not None:
            return gid in inner
        return gid in self._disk.gid_index()

    def gids(self):
        inner = self._inner
        if inner is not None:
            return inner.gids()
        return list(self._disk.gid_list())

    def meta(self, gid: object):
        inner = self._inner
        if inner is not None:
            return inner.meta(gid)
        from ..core.index import GraphMeta

        gidx = self._disk.gid_index().get(gid)
        if gidx is None:
            raise GraphNotIndexed(gid)
        return GraphMeta(
            int(self._disk.ints("g_order")[gidx]),
            int(self._disk.ints("g_maxdeg")[gidx]),
        )

    def graph_star_counts(self, gid: object) -> Counter:
        inner = self._inner
        if inner is not None:
            return inner.graph_star_counts(gid)
        counts = self._counts_cache.get(gid)
        if counts is None:
            disk = self._disk
            gidx = disk.gid_index().get(gid)
            if gidx is None:
                raise GraphNotIndexed(gid)
            gs_off = disk.ints("gs_off")
            gs_sids = disk.ints("gs_sids")
            gs_cnts = disk.ints("gs_cnts")
            counts = Counter()
            for i in range(int(gs_off[gidx]), int(gs_off[gidx + 1])):
                counts[int(gs_sids[i])] = int(gs_cnts[i])
            self._counts_cache[gid] = counts
        return Counter(counts)

    def database_max_degree(self) -> int:
        inner = self._inner
        if inner is not None:
            return inner.database_max_degree()
        if self._max_degree is None:
            degrees = self._disk.ints("g_maxdeg")
            if len(degrees) == 0:
                self._max_degree = 0
            elif _np is not None and isinstance(degrees, _np.ndarray):
                self._max_degree = int(degrees.max())
            else:
                self._max_degree = max(degrees)
        return self._max_degree

    def size_estimate(self) -> int:
        inner = self._inner
        if inner is not None:
            return inner.size_estimate()
        _, upper_postings = self.upper.stats()
        _, lower_postings = self.lower.stats()
        return upper_postings + lower_postings + len(self.catalog)

    # -- mutators: promote, then delegate ------------------------------
    def add_graph(self, gid: object, graph: Graph, stars: Sequence[Star]) -> None:
        self._materialize().add_graph(gid, graph, stars)

    def remove_graph(self, gid: object) -> None:
        self._materialize().remove_graph(gid)

    def apply_star_delta(self, gid, removed, added, new_meta) -> None:
        self._materialize().apply_star_delta(gid, removed, added, new_meta)

    # -- consistency ---------------------------------------------------
    def check_consistency(self) -> None:
        """Structural invariants of the mapped arrays (or the inner index)."""
        inner = self._inner
        if inner is not None:
            inner.check_consistency()
            return
        disk = self._disk
        n = disk.n_stars
        ref = disk.ints("cat_ref")
        off = disk.ints("up_off")
        up_freqs = disk.ints("up_freqs")
        for sid in range(n):
            lo, hi = int(off[sid]), int(off[sid + 1])
            if hi <= lo:
                raise IndexCorruptionError(f"star {sid} has no upper postings")
            total = sum(int(up_freqs[i]) for i in range(lo, hi))
            if total != int(ref[sid]):
                raise IndexCorruptionError(
                    f"star {sid}: refcount {int(ref[sid])} != posting total {total}"
                )
        gs_off = disk.ints("gs_off")
        gs_cnts = disk.ints("gs_cnts")
        occurrences = sum(int(c) for c in gs_cnts)
        if occurrences != sum(int(r) for r in ref):
            raise IndexCorruptionError("graph star counts disagree with refcounts")
        if len(gs_off) != disk.n_graphs + 1:
            raise IndexCorruptionError("graph CSR length mismatch")

    # -- pickling ------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        # Promote, then ship the plain in-memory index: mapped views (and
        # the memoryview-backed snapshot cache) cannot cross a process
        # boundary, but the materialised index pickles like any other.
        return {"inner": self._materialize()}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._disk = None
        self._inner = state["inner"]
        self._generation = self._inner.generation
        self.catalog = _MappedCatalog(self)
        self.upper = _MappedUpper(self)
        self.lower = _MappedLower(self)
        self._counts_cache = {}
        self._max_degree = None
