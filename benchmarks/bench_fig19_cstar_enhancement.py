"""Figure 19: how much SEGOS enhances C-Star — time + access ratio.

Paper: C-Star computes a mapping distance for 100 % of the database on
every query; SEGOS's index lets it touch roughly two orders of magnitude
fewer graphs, at a matching response-time advantage.  The "access ratio" is
(graphs whose mapping distance was computed) / |D|.
"""

from __future__ import annotations

import pytest

from repro.baselines import CStar, SegosMethod
from repro.bench import Series, format_table, run_queries
from repro.datasets import sample_queries


@pytest.mark.parametrize("which", ["aids", "pdg"])
def test_fig19_cstar_enhancement(
    benchmark, which, aids_dataset, pdg_dataset, grid, report
):
    dataset = aids_dataset if which == "aids" else pdg_dataset
    data = dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=61)
    tau = (
        grid.scalability_tau_aids if which == "aids" else grid.scalability_tau_linux
    )
    segos = SegosMethod(data.graphs, k=grid.default_k, h=grid.default_h)
    cstar = CStar(data.graphs)

    time_series = Series("time (s)")
    ratio_series = Series("access ratio")
    rows = []
    for method in (segos, cstar):
        run = run_queries(method, queries, tau)
        time_series.add(method.name, run.avg_time)
        ratio_series.add(method.name, run.avg_accessed / len(data.graphs))
        rows.append(method.name)
    report(
        f"fig19_cstar_enhancement_{which}",
        format_table(
            f"Fig 19 (SEGOS vs C-Star, {data.name}, τ={tau})",
            "method",
            rows,
            [time_series, ratio_series],
        ),
    )
    benchmark.pedantic(
        lambda: run_queries(segos, queries, tau), rounds=1, iterations=1
    )
    # Shape: C-Star touches everything; SEGOS touches strictly less.
    assert ratio_series.points["C-Star"] == 1.0
    assert ratio_series.points["SEGOS"] < 1.0
