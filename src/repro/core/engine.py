"""The SEGOS engine: public facade over index, TA, CA and DC stages.

:class:`SegosIndex` is the class downstream users interact with: build it
over a graph database, mutate graphs in place through the seven update kinds
of Section IV-C, and ask GED range queries.

Range-query semantics mirror the paper's filter-and-verify contract:

* ``range_query(q, tau=tau)`` returns a :class:`QueryResult` whose
  ``candidates`` are guaranteed to be a superset of the true answer set
  ``{g : λ(q, g) ≤ τ}`` and whose ``matches`` are the candidates already
  *confirmed* by an upper bound (no exact GED needed);
* ``verify="exact"`` additionally runs the A* GED over the unconfirmed
  candidates so ``matches`` becomes the exact answer set — practical only
  for small graphs, exactly as in the paper, where verification cost is the
  reason filtering power matters.

Since the staged-executor refactor, every query mode is a thin front-end
over :mod:`repro.core.plan`: the engine resolves its tuning knobs once into
a frozen :class:`repro.config.EngineConfig` (environment < constructor <
per-call precedence) and delegates execution to the one TA → CA → verify
plan.  Cache-sharing across related queries goes through the public
:meth:`SegosIndex.session` API.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..config import EngineConfig
from ..errors import GraphAlreadyIndexed, GraphNotIndexed
from ..graphs.model import Graph
from ..graphs.star import Star, decompose, star_at
from ..obs.trace import Trace
from ..perf.parallel import (
    effective_workers,
    parallel_batch_range_query,
    sharded_batch_range_query,
)
from ..perf.sed_cache import GLOBAL_SED_CACHE, CacheInfo
from .index import GraphMeta, TwoLevelIndex
from .plan import QueryResult, QuerySession, traced_scope
from .stats import QueryStats
from .ta_search import TopKResult, top_k_stars

#: Default k for the TA stage (Table II's default).
DEFAULT_K = 100

__all__ = ["DEFAULT_K", "QueryResult", "SegosIndex"]


class SegosIndex:
    """A SEGOS-indexed graph database supporting GED range queries.

    Tuning knobs resolve once, at construction, into a frozen
    :class:`~repro.config.EngineConfig`: ``REPRO_*`` environment variables
    provide defaults, explicit constructor kwargs override them, and
    per-call kwargs (``range_query(k=..., verify_workers=...)``) override
    both.  A fully-resolved ``config`` object may also be passed directly.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> db = SegosIndex()
    >>> db.add("g1", Graph(["a", "b", "c"], [(0, 1), (1, 2)]))
    >>> db.add("g2", Graph(["a", "b", "d"], [(0, 1), (1, 2)]))
    >>> result = db.range_query(Graph(["a", "b", "c"], [(0, 1), (1, 2)]), tau=1)
    >>> sorted(result.candidates)
    ['g1', 'g2']
    """

    def __init__(
        self,
        graphs: Optional[Mapping[object, Graph]] = None,
        *,
        k: Optional[int] = None,
        h: Optional[int] = None,
        partial_fraction: Optional[float] = None,
        backend: str = "memory",
        sqlite_path: str = ":memory:",
        assignment_backend: Optional[str] = None,
        topk_backend: Optional[str] = None,
        batch_workers: Optional[int] = None,
        verify_workers: Optional[int] = None,
        verify_budget: Optional[int] = None,
        verify_deadline: Optional[float] = None,
        sed_cache_size: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_pool_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        fault_plan: Optional[str] = None,
        trace: Optional[bool] = None,
        trace_path: Optional[str] = None,
        metrics: Optional[bool] = None,
        index_path: Optional[str] = None,
        mmap: Optional[bool] = None,
        fsync_policy: Optional[str] = None,
        delta_compact: Optional[float] = None,
        shards: Optional[int] = None,
        shard_by: Optional[str] = None,
        shard_pivots: Optional[int] = None,
        filter_tiers: Optional[object] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        base = config if config is not None else EngineConfig.from_env()
        self.config = base.override(
            k=k,
            h=h,
            partial_fraction=partial_fraction,
            assignment_backend=assignment_backend,
            topk_backend=topk_backend,
            batch_workers=batch_workers,
            verify_workers=verify_workers,
            verify_budget=verify_budget,
            verify_deadline=verify_deadline,
            sed_cache_size=sed_cache_size,
            task_timeout=task_timeout,
            max_pool_retries=max_pool_retries,
            retry_backoff=retry_backoff,
            fault_plan=fault_plan,
            trace=trace,
            trace_path=trace_path,
            metrics=metrics,
            index_path=index_path,
            mmap=mmap,
            fsync_policy=fsync_policy,
            delta_compact=delta_compact,
            shards=shards,
            shard_by=shard_by,
            shard_pivots=shard_pivots,
            filter_tiers=filter_tiers,
        )
        # The SED memo cache is process-global (it memoises a pure function
        # of signature pairs); an engine only touches it when its resolved
        # capacity differs from the live one — i.e. when the knob was set
        # explicitly or the environment changed since process start.
        if self.config.sed_cache_size != GLOBAL_SED_CACHE.maxsize:
            GLOBAL_SED_CACHE.resize(self.config.sed_cache_size)
        if backend == "memory":
            self.index = TwoLevelIndex()
        elif backend == "sqlite":
            # Section IV-C's relational-database option: both inverted
            # levels live in B-tree-backed SQLite tables.
            from .sqlite_index import SqliteTwoLevelIndex

            self.index = SqliteTwoLevelIndex(sqlite_path)
        else:
            raise ValueError(f"unknown backend {backend!r} (memory or sqlite)")
        self.backend = backend
        self._graphs: Dict[object, Graph] = {}
        # Persistence bookkeeping (see repro.core.persistence): the journal
        # records (op, gid) per mutation since the last save/load sync so
        # save_index can append a small delta segment instead of rewriting
        # the whole sidecar; _disk_source is the DiskHandle of the on-disk
        # index this engine was loaded from / last saved to, handed to
        # worker pools in place of a pickled engine while still valid.
        self._disk_source = None
        self._persist_journal: List = []
        self._journal_overflow = False
        if graphs:
            for gid, graph in graphs.items():
                self.add(gid, graph)

    # ------------------------------------------------------------------
    # Resolved-knob accessors (read-only views over the frozen config)
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self.config.k

    @property
    def h(self) -> int:
        return self.config.h

    @property
    def partial_fraction(self) -> float:
        return self.config.partial_fraction

    @property
    def assignment_backend(self) -> Optional[str]:
        return self.config.assignment_backend

    @property
    def topk_backend(self) -> Optional[str]:
        return self.config.topk_backend

    @property
    def filter_tiers(self) -> tuple:
        return self.config.filter_tiers

    # ------------------------------------------------------------------
    # Database accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, gid: object) -> bool:
        return gid in self._graphs

    def gids(self) -> Iterable[object]:
        return self._graphs.keys()

    def graph(self, gid: object) -> Graph:
        """Return the indexed graph for *gid* (the live object; do not
        mutate it directly — use the update methods so the index follows)."""
        try:
            return self._graphs[gid]
        except KeyError:
            raise GraphNotIndexed(gid) from None

    # ------------------------------------------------------------------
    # Update kinds 1–2: whole graphs
    # ------------------------------------------------------------------
    def add(self, gid: object, graph: Graph) -> None:
        """Insert a graph (decompose into stars, update both levels)."""
        if gid in self._graphs:
            raise GraphAlreadyIndexed(gid)
        if graph.order == 0:
            raise ValueError("cannot index an empty graph")
        if self.backend == "sqlite" and not isinstance(gid, str):
            raise TypeError(
                f"the sqlite backend stores gids as TEXT; got {type(gid).__name__} "
                f"(use string ids)"
            )
        stored = graph.copy()
        self.index.add_graph(gid, stored, decompose(stored))
        self._graphs[gid] = stored
        self._record_persist_op("add", gid)

    def remove(self, gid: object) -> None:
        """Delete a graph from the index."""
        self.index.remove_graph(gid)
        del self._graphs[gid]
        self._record_persist_op("remove", gid)

    # ------------------------------------------------------------------
    # Update kinds 3–7: in-place mutations (Section IV-C)
    # ------------------------------------------------------------------
    def _affected_stars(self, graph: Graph, vertices: Iterable[int]) -> List[Star]:
        return [star_at(graph, v) for v in vertices if graph.has_vertex(v)]

    def _apply_mutation(self, gid: object, touched: Sequence[int], mutate) -> None:
        """Swap the stars of *touched* vertices around a mutation callback."""
        graph = self.graph(gid)
        before = self._affected_stars(graph, touched)
        mutate(graph)
        after = self._affected_stars(graph, touched)
        self.index.apply_star_delta(
            gid, before, after, GraphMeta(graph.order, graph.max_degree())
        )
        self._record_persist_op("update", gid)

    def add_edge(self, gid: object, u: int, v: int) -> None:
        """Insert an edge: refreshes the two endpoint stars."""
        self._apply_mutation(gid, (u, v), lambda g: g.add_edge(u, v))

    def remove_edge(self, gid: object, u: int, v: int) -> None:
        """Delete an edge: refreshes the two endpoint stars."""
        self._apply_mutation(gid, (u, v), lambda g: g.remove_edge(u, v))

    def add_vertex(self, gid: object, vertex: int, label: str) -> None:
        """Insert an isolated vertex: adds exactly one star."""
        self._apply_mutation(gid, (vertex,), lambda g: g.add_vertex(vertex, label))

    def remove_vertex(self, gid: object, vertex: int) -> None:
        """Delete a vertex (and incident edges): refreshes it + neighbours."""
        graph = self.graph(gid)
        touched = [vertex, *graph.neighbors(vertex)]
        self._apply_mutation(gid, touched, lambda g: g.remove_vertex(vertex))

    def relabel_vertex(self, gid: object, vertex: int, label: str) -> None:
        """Relabel a vertex: refreshes its star and all neighbour stars."""
        graph = self.graph(gid)
        touched = [vertex, *graph.neighbors(vertex)]
        self._apply_mutation(gid, touched, lambda g: g.relabel_vertex(vertex, label))

    # ------------------------------------------------------------------
    # Queries — thin front-ends over the staged executor
    # ------------------------------------------------------------------
    def session(self, **overrides) -> QuerySession:
        """Open a :class:`~repro.core.plan.QuerySession` on this engine.

        Related queries issued through one session share their TA top-k
        searches (the Figure-11 stream optimisation); ``overrides`` are
        :class:`~repro.config.EngineConfig` fields pinned for the whole
        session.  This is the public API joins, kNN rings and batches build
        on.
        """
        return QuerySession(self, config=self.config.override(**overrides))

    def embeddings(self, stats: Optional[QueryStats] = None):
        """The per-graph embedding vectors of the ``embed`` filter tier.

        Cached on the index object keyed by its generation counter (same
        discipline as the columnar snapshot, and cached in the same place
        so worker-bound pickles never carry memoryview-backed columns).
        Mapped engines reuse the ``.segosx`` embedding sections zero-copy;
        a stale sidecar written before those sections existed degrades
        **loudly** — a :class:`~repro.resilience.telemetry.DegradationEvent`
        lands in *stats* — to an on-the-fly build from the graph store.
        """
        from ..perf.columnar import GraphEmbeddings

        generation = getattr(self.index, "generation", 0)
        cached = getattr(self.index, "_graph_embeddings", None)
        if cached is not None and cached.generation == generation:
            return cached
        embeddings = None
        disk = getattr(self.index, "_disk", None)
        if disk is not None and not getattr(self.index, "promoted", False):
            if disk.has_embeddings():
                embeddings = disk.embeddings(generation)
            elif stats is not None:
                from ..resilience.telemetry import DegradationEvent

                stats.degradations.append(
                    DegradationEvent(
                        point="embeddings.sidecar",
                        stage="embed",
                        cause="sidecar predates embedding sections",
                        fallback="recompute",
                    )
                )
        if embeddings is None:
            embeddings = GraphEmbeddings.build(
                list(self._graphs.items()), generation
            )
        try:
            self.index._graph_embeddings = embeddings
        except AttributeError:  # pragma: no cover - slotted stand-ins
            pass
        return embeddings

    def top_k_sub_units(self, star: Star, k: Optional[int] = None) -> TopKResult:
        """TA stage on its own: the k most SED-similar database stars."""
        return top_k_stars(
            self.index, star, k or self.config.k, backend=self.config.topk_backend
        )

    def range_query(
        self,
        query: Graph,
        *,
        tau: float,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        partial_fraction: Optional[float] = None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        verify_workers: Optional[int] = None,
        verify_budget: Optional[int] = None,
        verify_deadline: Optional[float] = None,
        filter_tiers: Optional[object] = None,
        trace: Optional[bool] = None,
    ) -> QueryResult:
        """Answer ``{g : λ(query, g) ≤ tau}`` with filter(-and-verify).

        Everything but the query graph is keyword-only.  ``verify``:

        * ``"none"`` — return candidates + upper-bound-confirmed matches;
        * ``"exact"`` — additionally run A* GED on unconfirmed candidates so
          ``matches`` is the exact answer set.

        Exact verification is scheduled through
        :func:`repro.core.verify.verify_candidates`: most-promising
        candidates first, optionally fanned out over ``workers``
        (= ``verify_workers``) processes.  ``verify_budget`` caps each A*
        run's expanded states and ``timeout`` (= ``verify_deadline``,
        seconds) stops scheduling new runs; candidates left undecided by
        either stay in ``candidates`` but not ``matches``, and
        ``verified`` turns False.  ``trace=True`` records a span tree for
        this call (``result.trace``).  Every keyword is a per-call
        :class:`~repro.config.EngineConfig` override.
        """
        return self.session().range_query(
            query,
            tau=tau,
            verify=verify,
            k=k,
            h=h,
            partial_fraction=partial_fraction,
            workers=workers,
            timeout=timeout,
            verify_workers=verify_workers,
            verify_budget=verify_budget,
            verify_deadline=verify_deadline,
            filter_tiers=filter_tiers,
            trace=trace,
        )

    def batch_range_query(
        self,
        queries: Sequence[Graph],
        *,
        tau: float,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        workers: Optional[int] = None,
        verify_workers: Optional[int] = None,
        trace: Optional[bool] = None,
    ) -> List[QueryResult]:
        """Answer a batch of range queries with a shared TA cache.

        Figure 11 feeds query *streams* through the pipeline; the top-k
        sub-unit results depend only on the star (not on the query graph),
        so queries in a batch reuse each other's TA searches.  On workloads
        with overlapping star vocabularies this removes most TA work after
        the first few queries.

        ``workers`` (default: the engine's resolved ``batch_workers`` knob)
        above 1 fans query chunks out over the supervised worker pool
        (:mod:`repro.resilience.pool`): engines that cannot travel to a
        subprocess (the sqlite backend) fall back to the serial path with
        identical answers, broken pools are re-spawned with completed
        chunks salvaged, and every degradation is recorded in the first
        result's ``stats.degradations`` — loud, not silent.
        ``verify_workers`` parallelises exact verification *within* each
        query; when the batch itself runs in worker processes the
        per-query verification stays serial (one pool, not pools of
        pools).

        On traced runs (``trace=True``, the engine's ``trace`` knob, or an
        ambient :func:`~repro.obs.trace.trace_query`) the whole batch —
        including worker-process spans shipped home by the pool — lands in
        one span tree, shared by every result's ``trace`` handle.
        """
        if verify not in ("none", "exact"):
            raise ValueError(f"unknown verify mode {verify!r}")
        config = self.config.override(batch_workers=workers, trace=trace)
        # Worker counts *defaulted* from the environment or engine config
        # are capped by the machine (serial on a 1-core box — pool dispatch
        # with zero parallelism is pure loss); an explicit per-call
        # ``workers=`` is honoured verbatim.
        pool_workers = config.batch_workers
        if workers is None:
            pool_workers = effective_workers(
                pool_workers,
                shards=config.shards if config.shards > 1 else None,
            )
        if config.shards > 1:
            return self._sharded_batch_range_query(
                queries,
                tau,
                config=config,
                pool_workers=pool_workers,
                k=k,
                h=h,
                verify=verify,
                verify_workers=verify_workers,
            )
        with traced_scope(
            config, "batch", queries=len(queries), tau=tau
        ) as tracer:
            degradations: List = []
            results: Optional[List[QueryResult]] = None
            if pool_workers > 1 and len(queries) > 1:
                results, degradations = parallel_batch_range_query(
                    self,
                    queries,
                    tau,
                    workers=pool_workers,
                    k=k,
                    h=h,
                    verify=verify,
                    tracer=tracer,
                )
            if results is None:
                results = self._serial_batch_range_query(
                    queries,
                    tau,
                    k=k,
                    h=h,
                    verify=verify,
                    verify_workers=verify_workers,
                )
            if degradations and results:
                results[0].stats.degradations.extend(degradations)
        if tracer.enabled:
            shared = Trace(tracer.snapshot(), tracer.trace_id)
            for result in results:
                result.trace = shared
        return results

    def _sharded_batch_range_query(
        self,
        queries: Sequence[Graph],
        tau: float,
        *,
        config: EngineConfig,
        pool_workers: int,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        verify_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """Batch execution over catalog shards (see :mod:`repro.perf.shard`).

        With ``pool_workers > 1`` each surviving shard becomes one
        supervised-pool task carrying only the queries its pivots did not
        rule out; the parent gathers per-shard answer streams and merges
        them per query under the global bounds.  Otherwise each query runs
        the serial in-process scatter through one session (shard top-k
        caches shared across the batch either way).
        """
        from ..perf.shard import sharded_view
        from .plan import merge_shard_results
        from .stats import WallClock

        with traced_scope(
            config, "batch", queries=len(queries), tau=tau, shards=config.shards
        ) as tracer:
            view = sharded_view(self, config)
            per_query = None
            degradations: List = []
            if pool_workers > 1 and len(view.live_shards()) > 1 and queries:
                clock = WallClock.start()
                per_query, degradations = sharded_batch_range_query(
                    self,
                    view,
                    queries,
                    tau,
                    workers=pool_workers,
                    k=k,
                    h=h,
                    verify=verify,
                    tracer=tracer,
                )
            if per_query is not None:
                live = len(view.live_shards())
                elapsed = clock.elapsed()
                results = []
                for shard_results in per_query:
                    merged = merge_shard_results(
                        self,
                        [result for _sid, result in shard_results],
                        verify=verify,
                        shards_scattered=len(shard_results),
                        shards_pruned=live - len(shard_results),
                    )
                    # Wall clock for the whole scatter is shared; apportion
                    # the per-query number as the slowest shard's own time.
                    merged.elapsed = max(
                        [r.elapsed for _sid, r in shard_results], default=elapsed
                    )
                    results.append(merged)
                if config.metrics:
                    from ..obs.metrics import GLOBAL_METRICS, record_query_metrics

                    for result in results:
                        record_query_metrics(
                            GLOBAL_METRICS, result.stats, result.elapsed
                        )
            else:
                session = self.session(
                    k=k, h=h, verify_workers=verify_workers
                )
                results = [
                    session.range_query(query, tau=tau, verify=verify)
                    for query in queries
                ]
            if degradations and results:
                results[0].stats.degradations.extend(degradations)
        if tracer.enabled:
            shared = Trace(tracer.snapshot(), tracer.trace_id)
            for result in results:
                result.trace = shared
        return results

    def _serial_batch_range_query(
        self,
        queries: Sequence[Graph],
        tau: float,
        *,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        verify_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """In-process batch execution (also the per-chunk parallel worker).

        One :class:`~repro.core.plan.QuerySession` serves the whole batch,
        so the TA cache is shared across queries.  Parallel-batch chunks
        call this with ``verify_workers=1`` pinned (see
        :func:`repro.perf.parallel.parallel_batch_range_query`), so a
        process-parallel batch never nests a verification pool inside its
        worker processes.
        """
        if verify not in ("none", "exact"):
            raise ValueError(f"unknown verify mode {verify!r}")
        session = self.session(k=k, h=h, verify_workers=verify_workers)
        return [
            session.range_query(query, tau=tau, verify=verify) for query in queries
        ]

    # ------------------------------------------------------------------
    # Persistence bookkeeping (driven by repro.core.persistence)
    # ------------------------------------------------------------------
    #: Journal entries kept before giving up on delta tracking.  A save
    #: after overflow simply rewrites the sidecar in full, so the cap only
    #: bounds memory for engines that mutate forever without saving.
    _JOURNAL_CAP = 100_000

    def _record_persist_op(self, op: str, gid: object) -> None:
        if self._journal_overflow:
            return
        self._persist_journal.append((op, gid))
        if len(self._persist_journal) > self._JOURNAL_CAP:
            self._persist_journal.clear()
            self._journal_overflow = True

    def disk_handle(self):
        """The on-disk index handle, if one exists and is still current.

        Returns the :class:`~repro.perf.diskcat.DiskHandle` recorded at the
        last ``load_index``/``save_index`` sync **only while the engine has
        not mutated since** (the index generation still equals the handle's
        ``local_generation``).  The pool paths use this to ship workers a
        tiny ``(path, generation)`` ticket instead of a pickled engine;
        ``None`` means "no valid disk twin — fall back to pickling".
        """
        handle = self._disk_source
        if handle is None:
            return None
        if self.index.generation != handle.local_generation:
            return None
        return handle

    def _sync_disk_source(self, handle) -> None:
        """Record that disk and memory agree as of now (journal resets)."""
        self._disk_source = handle
        self._persist_journal = []
        self._journal_overflow = False

    def _attach_mapped_storage(self, index, graphs, handle) -> None:
        """Swap in mmap-backed index + graph store (load_index fast path)."""
        self.index = index
        self._graphs = graphs
        self._sync_disk_source(handle)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Total postings across both index levels (Figure 13's metric)."""
        return self.index.size_estimate()

    def sed_cache_info(self) -> CacheInfo:
        """Hit/miss counters of the process-global SED memo cache.

        The cache is shared by every engine in the process (it memoises a
        pure function of signature pairs), so these are process totals;
        per-query deltas live in :attr:`QueryStats.sed_cache_hits` /
        ``sed_cache_misses``.
        """
        return GLOBAL_SED_CACHE.info()

    def sed_cache_clear(self) -> None:
        """Empty the process-global SED memo cache and reset its counters."""
        GLOBAL_SED_CACHE.clear()

    def distinct_star_count(self) -> int:
        """Number of distinct sub-units currently indexed."""
        return len(self.index.catalog)

    def check_consistency(self) -> None:
        """Validate internal index invariants (raises on corruption)."""
        self.index.check_consistency()
        for gid, graph in self._graphs.items():
            from collections import Counter

            expect = Counter(
                self.index.catalog.sid(star) for star in decompose(graph)
            )
            if None in expect:
                raise AssertionError(f"graph {gid!r} has an uncatalogued star")
            if expect != self.index.graph_star_counts(gid):
                raise AssertionError(f"star multiset mismatch for graph {gid!r}")
