"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graphs import io as gio
from repro.graphs.model import Graph


@pytest.fixture
def corpus_file(tmp_path, paper_g1, paper_g2):
    path = tmp_path / "corpus.txt"
    gio.save(path, [("g1", paper_g1), ("g2", paper_g2)])
    return path


@pytest.fixture
def db_file(tmp_path, corpus_file):
    path = tmp_path / "db.segos"
    assert main(["build", str(corpus_file), str(path)]) == 0
    return path


@pytest.fixture
def query_file(tmp_path, paper_g1):
    path = tmp_path / "query.txt"
    gio.save(path, [("q", paper_g1)])
    return path


class TestBuildAndStats:
    def test_build(self, corpus_file, tmp_path, capsys):
        out = tmp_path / "db.segos"
        assert main(["build", str(corpus_file), str(out)]) == 0
        assert out.exists()
        assert "indexed 2 graphs" in capsys.readouterr().out

    def test_stats(self, db_file, capsys):
        assert main(["stats", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "graphs:         2" in out
        assert "distinct stars: 7" in out

    def test_build_missing_file(self, tmp_path, capsys):
        assert main(["build", str(tmp_path / "missing.txt"), "x"]) == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_range_query(self, db_file, query_file, capsys):
        assert main(["query", str(db_file), str(query_file), "--tau", "3"]) == 0
        out = capsys.readouterr().out
        assert "candidates (tau=3.0): 2" in out

    def test_range_query_verified(self, db_file, query_file, capsys):
        assert main(
            ["query", str(db_file), str(query_file), "--tau", "3", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches (tau=3.0): 2" in out
        assert "g1" in out and "g2" in out

    def test_empty_query_file(self, db_file, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["query", str(db_file), str(empty), "--tau", "1"]) == 1
        assert "error:" in capsys.readouterr().err


class TestObservability:
    def test_query_trace_flag_prints_span_tree(self, db_file, query_file, capsys):
        assert main(
            ["query", str(db_file), str(query_file), "--tau", "3", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "query" in out and "ta" in out and "ca" in out

    def test_query_metrics_flag_prints_prometheus(self, db_file, query_file, capsys):
        assert main(
            ["query", str(db_file), str(query_file), "--tau", "3", "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_ta_accesses_total" in out

    def test_trace_subcommand_exports_jsonl(self, db_file, query_file, tmp_path, capsys):
        from repro.obs import read_spans_jsonl

        out_path = tmp_path / "spans.jsonl"
        assert main(
            [
                "trace", str(db_file), str(query_file),
                "--tau", "3", "-o", str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "jsonl" in out
        spans = read_spans_jsonl(str(out_path))
        assert {"query", "ta", "ca"} <= {s.name for s in spans}

    def test_trace_subcommand_exports_chrome(self, db_file, query_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert main(
            [
                "trace", str(db_file), str(query_file),
                "--tau", "3", "--verify", "--format", "chrome",
                "-o", str(out_path),
            ]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]
        assert any(e["name"] == "verify" for e in payload["traceEvents"])


class TestKnn:
    def test_knn(self, db_file, query_file, capsys):
        assert main(["knn", str(db_file), str(query_file), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "g1  ged=0" in out
        assert "g2  ged=3" in out


class TestGenerate:
    @pytest.mark.parametrize("kind", ["aids", "pdg"])
    def test_generate(self, kind, tmp_path, capsys):
        out = tmp_path / "corpus.txt"
        assert main(["generate", kind, str(out), "-n", "5", "--seed", "3"]) == 0
        pairs = gio.load(out)
        assert len(pairs) == 5

    def test_generated_corpus_is_buildable(self, tmp_path):
        corpus = tmp_path / "c.txt"
        db = tmp_path / "c.segos"
        assert main(["generate", "aids", str(corpus), "-n", "4"]) == 0
        assert main(["build", str(corpus), str(db)]) == 0


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestJoin:
    def test_join_finds_close_pair(self, db_file, capsys):
        # g1 and g2 are 3 edits apart: tau=3 joins them.
        assert main(["join", str(db_file), "--tau", "3", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "matched pairs (tau=3.0): 1" in out
        assert "g1 -- g2" in out

    def test_join_tau_zero_empty(self, db_file, capsys):
        assert main(["join", str(db_file), "--tau", "0", "--verify"]) == 0
        assert "matched pairs (tau=0.0): 0" in capsys.readouterr().out

    def test_join_candidates_mode(self, db_file, capsys):
        assert main(["join", str(db_file), "--tau", "3"]) == 0
        assert "candidate pairs" in capsys.readouterr().out


class TestIndexSidecar:
    def test_build_writes_sidecar(self, db_file, capsys):
        assert main(["index", "build", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "wrote sidecar for 2 graphs" in out
        assert (db_file.parent / "db.segos.segosx").exists()

    def test_build_sharded_writes_manifest(self, db_file, capsys):
        assert main(["index", "build", str(db_file), "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "wrote 2 shard sidecars" in out
        assert "shard 0:" in out and "shard 1:" in out
        assert (db_file.parent / "db.segos.segosx.shards.json").exists()
        assert (db_file.parent / "db.segos.segosx.shard0").exists()
        assert (db_file.parent / "db.segos.segosx.shard1").exists()

    def test_inspect_reports_header(self, db_file, capsys):
        assert main(["index", "inspect", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "format version: 1" in out
        assert "graphs:         2" in out
        assert "fresh" in out

    def test_inspect_reports_embedding_sections(self, db_file, capsys):
        assert main(["index", "inspect", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "embeddings:     present (" in out

    def test_inspect_flags_pre_embedding_layout(self, db_file, capsys):
        import dataclasses
        import hashlib

        from repro.core.persistence import load_index
        from repro.perf import diskcat

        engine = load_index(db_file)
        data = db_file.read_bytes()
        diskcat.write_sidecar(
            db_file.parent / "db.segos.segosx",
            list(engine._graphs.items()),
            config=dataclasses.asdict(engine.config),
            generation=0,
            source_size=len(data),
            source_sha=hashlib.sha256(data).digest(),
            embeddings=False,
        )
        assert main(["index", "inspect", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "embeddings:     MISSING" in out

    def test_inspect_verify_clean(self, db_file, capsys):
        assert main(["index", "inspect", str(db_file), "--verify"]) == 0
        assert "all sections + delta journal OK" in capsys.readouterr().out

    def test_inspect_flags_stale_sidecar(self, db_file, query_file, capsys):
        # Appending a graph to the text invalidates the sidecar.
        db_file.write_bytes(db_file.read_bytes() + query_file.read_bytes())
        assert main(["index", "inspect", str(db_file)]) == 0
        assert "STALE" in capsys.readouterr().out

    def test_inspect_missing_sidecar_errors(self, corpus_file, capsys):
        assert main(["index", "inspect", str(corpus_file)]) == 1
        assert "error:" in capsys.readouterr().err


class TestIndexScrub:
    def test_scrub_clean(self, db_file, capsys):
        assert main(["index", "scrub", str(db_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_scrub_detects_torn_tail_without_touching(self, db_file, capsys):
        sidecar = db_file.parent / "db.segos.segosx"
        clean = sidecar.read_bytes()
        sidecar.write_bytes(clean + b"\x00garbage\x00")
        assert main(["index", "scrub", str(db_file)]) == 1
        out = capsys.readouterr().out
        assert "torn byte" in out and "--repair" in out
        assert sidecar.read_bytes() != clean  # audit-only: file untouched

    def test_scrub_repair_truncates_and_reloads(self, db_file, capsys):
        sidecar = db_file.parent / "db.segos.segosx"
        clean = sidecar.read_bytes()
        sidecar.write_bytes(clean + b"\x00garbage\x00")
        assert main(["index", "scrub", str(db_file), "--repair"]) == 0
        assert "repaired in place" in capsys.readouterr().out
        assert sidecar.read_bytes() == clean
        assert main(["index", "scrub", str(db_file)]) == 0

    def test_scrub_fatal_damage_points_at_rebuild(self, db_file, capsys):
        sidecar = db_file.parent / "db.segos.segosx"
        raw = bytearray(sidecar.read_bytes())
        raw[8] ^= 0xFF  # inside the header CRC field
        sidecar.write_bytes(bytes(raw))
        assert main(["index", "scrub", str(db_file), "--repair"]) == 1
        assert "rebuild" in capsys.readouterr().out

    def test_scrub_missing_sidecar_errors(self, corpus_file, capsys):
        assert main(["index", "scrub", str(corpus_file)]) == 1
