"""Figure 12: sensitivity of k_s and h on the AIDS-like dataset.

Paper: as k_s grows, the top-k sub-unit lists get longer, more graphs are
pruned early, and both the access number and the response time fall to a
knee, then flatten.  The same holds for h.  Axes here: x = parameter value,
y = average access number / average response time over the query workload.
"""

from __future__ import annotations

import pytest

from repro.baselines import SegosMethod
from repro.bench import Series, format_table, run_queries
from repro.datasets import sample_queries


@pytest.fixture(scope="module")
def workload(aids_dataset, grid):
    data = aids_dataset.subset(grid.default_db_size)
    queries = sample_queries(data, grid.query_count, seed=31)
    return data, queries


def test_fig12_k_sensitivity(benchmark, workload, grid, report):
    data, queries = workload
    tau = grid.default_tau
    time_series = Series("SEGOS-k time (s)")
    access_series = Series("SEGOS-k access#")
    methods = {
        k: SegosMethod(data.graphs, k=k, h=grid.default_h) for k in grid.k_values
    }
    for k, method in methods.items():
        run = run_queries(method, queries, tau)
        time_series.add(k, run.avg_time)
        access_series.add(k, run.avg_accessed)
    report(
        "fig12a_k_sensitivity",
        format_table(
            "Fig 12 (k_s sensitivity, aids-like)",
            "k_s",
            list(grid.k_values),
            [access_series, time_series],
        ),
    )
    benchmark.pedantic(
        lambda: run_queries(methods[grid.default_k], queries, tau),
        rounds=1,
        iterations=1,
    )
    # Shape check: large k must access no more graphs than the smallest k.
    assert (
        access_series.points[grid.k_values[-1]]
        <= access_series.points[grid.k_values[0]]
    )


def test_fig12_h_sensitivity(benchmark, workload, grid, report):
    data, queries = workload
    tau = grid.default_tau
    time_series = Series("SEGOS-h time (s)")
    access_series = Series("SEGOS-h access#")
    methods = {
        h: SegosMethod(data.graphs, k=grid.default_k, h=h) for h in grid.h_values
    }
    for h, method in methods.items():
        run = run_queries(method, queries, tau)
        time_series.add(h, run.avg_time)
        access_series.add(h, run.avg_accessed)
    report(
        "fig12b_h_sensitivity",
        format_table(
            "Fig 12 (h sensitivity, aids-like)",
            "h",
            list(grid.h_values),
            [access_series, time_series],
        ),
    )
    benchmark.pedantic(
        lambda: run_queries(methods[grid.default_h], queries, tau),
        rounds=1,
        iterations=1,
    )
