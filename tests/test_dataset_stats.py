"""Tests for the corpus-statistics helpers."""

from __future__ import annotations

import pytest

from repro.datasets import (
    aids_like,
    label_histogram,
    order_histogram,
    pdg_like,
    summarize,
)
from repro.graphs.model import Graph


class TestSummarize:
    def test_basic_fields(self):
        graphs = [
            Graph(["a", "b"], [(0, 1)]),
            Graph(["a", "b", "c"], [(0, 1), (1, 2)]),
        ]
        summary = summarize(graphs)
        assert summary.count == 2
        assert summary.avg_order == 2.5
        assert summary.min_order == 2
        assert summary.max_order == 3
        assert summary.distinct_labels == 3
        assert summary.max_degree == 2
        assert summary.avg_size == 1.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_describe_card(self):
        summary = summarize([Graph(["a"])])
        text = summary.describe()
        assert "1 graphs" in text
        assert "1 labels" in text

    def test_constant_order_within_is_one(self):
        graphs = [Graph(["a", "b"]) for _ in range(3)]
        assert summarize(graphs).within_one_stddev == 1.0

    def test_paper_shape_claims(self):
        """AIDS-like sizes concentrate near the mean more than PDG-like."""
        aids = aids_like(400, seed=9, mean_order=12, stddev=3)
        pdg = pdg_like(400, seed=9, mean_order=12, min_order=6)
        a = summarize(aids.graphs.values())
        p = summarize(pdg.graphs.values())
        # Normal ≈ 0.68 within 1σ; uniform ≈ 0.58.
        assert a.within_one_stddev > p.within_one_stddev


class TestHistograms:
    def test_label_histogram(self):
        graphs = [Graph(["a", "a", "b"])]
        assert label_histogram(graphs) == {"a": 2, "b": 1}

    def test_order_histogram(self):
        graphs = [Graph(["a"]), Graph(["a"]), Graph(["a", "b"])]
        assert order_histogram(graphs) == {1: 2, 2: 1}

    def test_aids_label_skew(self):
        """Chemical corpora must show Zipf-ish label skew (paper's datasets)."""
        data = aids_like(200, seed=10, mean_order=12, stddev=3)
        hist = sorted(label_histogram(data.graphs.values()).values(), reverse=True)
        assert hist[0] > 3 * hist[len(hist) // 2]
