#!/usr/bin/env python
"""Persistence benchmark: mmap cold start vs full rebuild, deltas, transport.

Standalone like the other benches so CI can smoke it without the test
harness::

    PYTHONPATH=src python benchmarks/bench_persistence.py [--smoke]

Writes ``BENCH_persistence.json`` at the repository root with:

1. **cold start curve** — best-of-N wall time of ``load_index`` over a
   corpus-size sweep, once as a full streaming rebuild (``mmap=False``)
   and once attaching the ``.segosx`` sidecar zero-copy, plus the first
   range query on each (the mapped engine defers real work, so the first
   query is where laziness would hide a regression).  The acceptance bar:
   mmap cold start ≥ 10× faster than rebuild at the largest corpus;
2. **delta appends** — save cost after a single mutation with the delta
   journal (append) vs ``delta_compact=0`` (full rewrite), and the reload
   cost with a delta tail to replay;
3. **worker transport** — serial vs pooled batch range queries with the
   ``DiskHandle`` transport (honest numbers: on a single-core container
   the pool cannot win, so ``cpu_count`` is recorded alongside the
   speedup and the ≥ 1× expectation only binds with ≥ 2 cores).

``--mode rebuild`` / ``--mode mmap`` restrict the cold-start section to
one loader while keeping identical ``time_*`` keys, so two runs feed
``check_bench_regression.py`` directly: the mmap run must never be slower
than the rebuild baseline.  ``--check-speedup`` exits non-zero when the
largest corpus misses the 10× bar (CI smoke sizes are exempt — tiny
corpora measure interpreter overhead, not the format).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import SegosIndex  # noqa: E402
from repro.core.persistence import load_index, save_index  # noqa: E402
from repro.datasets import aids_like, sample_queries  # noqa: E402
from repro.perf.columnar import numpy_available  # noqa: E402
from repro.perf.diskcat import default_sidecar_path  # noqa: E402
from repro.perf.parallel import parallel_batch_range_query  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_persistence.json"
SPEEDUP_BAR = 10.0


def _best_of(repeats, fn):
    best, value = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def bench_cold_start(workdir: Path, sizes, repeats: int, mode: str, seed: int):
    """Rebuild-vs-mmap load sweep; identical ``time_*`` keys in every mode.

    Returns a dict keyed ``graphs_<n>`` (not a list) so every cell is
    visible to ``check_bench_regression.py``'s ``time_*`` leaf walk.
    """
    curve = {}
    for n in sizes:
        data = aids_like(n, seed=seed, mean_order=9, stddev=2)
        engine = SegosIndex(data.graphs)
        path = workdir / f"db-{n}.segos"
        time_save, _ = _best_of(1, lambda: save_index(engine, path))
        query = sample_queries(data, 1, seed=seed + 1)[0]
        entry = {
            "graphs": n,
            "text_bytes": path.stat().st_size,
            "sidecar_bytes": os.path.getsize(default_sidecar_path(path)),
            # Save cost is setup, not the compared metric, in single-mode
            # runs — a time_ key there would race two identical full saves
            # against a zero-tolerance gate.
            ("time_save_s" if mode == "both" else "save_s"): time_save,
        }

        def cold_query(loaded):
            return sorted(map(str, loaded.range_query(query, tau=2).candidates))

        answers = {}
        if mode in ("both", "rebuild"):
            t, loaded = _best_of(repeats, lambda: load_index(path, mmap=False))
            entry["time_cold_load_s" if mode == "rebuild" else "time_rebuild_s"] = t
            tq, answers["rebuild"] = _best_of(1, lambda: cold_query(loaded))
            entry["time_first_query_rebuilt_s"] = tq
        if mode in ("both", "mmap"):
            t, loaded = _best_of(repeats, lambda: load_index(path, mmap=True))
            assert loaded.disk_handle() is not None, "sidecar did not attach"
            entry["time_cold_load_s" if mode == "mmap" else "time_mmap_s"] = t
            tq, answers["mmap"] = _best_of(1, lambda: cold_query(loaded))
            entry["time_first_query_mapped_s"] = tq
        if mode == "both":
            assert answers["rebuild"] == answers["mmap"], "loaders disagreed"
            entry["speedup"] = entry["time_rebuild_s"] / entry["time_mmap_s"]
            entry["mmap_10x"] = entry["speedup"] >= SPEEDUP_BAR
        curve[f"graphs_{n}"] = entry
    return curve


def bench_delta(workdir: Path, n: int, repeats: int, seed: int) -> dict:
    """Append-one-delta save vs compacted full rewrite, and replay cost."""
    data = aids_like(n, seed=seed + 7, mean_order=9, stddev=2)
    path = workdir / "delta.segos"

    def mutated_engine(delta_compact):
        engine = SegosIndex(data.graphs, delta_compact=delta_compact)
        save_index(engine, path)
        engine.remove(sorted(engine.gids())[0])
        return engine

    def timed_save(delta_compact):
        best = None
        for _ in range(repeats):
            engine = mutated_engine(delta_compact)  # setup outside the clock
            started = time.perf_counter()
            save_index(engine, path)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    time_append = timed_save(0.25)
    time_rewrite = timed_save(0.0)
    engine = mutated_engine(0.25)
    save_index(engine, path)  # leave a one-segment tail on disk
    time_replay_load, loaded = _best_of(repeats, lambda: load_index(path))
    assert loaded.disk_handle() is not None, "delta tail broke the sidecar"
    return {
        "graphs": n,
        "time_delta_append_save_s": time_append,
        "time_full_rewrite_save_s": time_rewrite,
        "time_mmap_load_with_delta_s": time_replay_load,
    }


def bench_transport(workdir: Path, n: int, workers: int, repeats: int, seed: int):
    """Serial vs DiskHandle-pooled batch queries on an mmap-loaded engine."""
    data = aids_like(n, seed=seed + 13, mean_order=9, stddev=2)
    path = workdir / "transport.segos"
    save_index(SegosIndex(data.graphs), path)
    engine = load_index(path)
    assert engine.disk_handle() is not None
    queries = sample_queries(data, 6, seed=seed + 14)

    time_serial, serial = _best_of(
        repeats, lambda: engine._serial_batch_range_query(queries, 2)
    )

    def pooled():
        results, events = parallel_batch_range_query(
            engine, queries, 2, workers=workers
        )
        assert not events, f"disk transport degraded: {events}"
        return results

    time_parallel, parallel = _best_of(repeats, pooled)
    assert [sorted(map(str, r.candidates)) for r in serial] == [
        sorted(map(str, r.candidates)) for r in parallel
    ], "pooled transport changed answers"
    cores = os.cpu_count() or 1
    speedup = time_serial / time_parallel if time_parallel else None
    return {
        "graphs": n,
        "queries": len(queries),
        "workers": workers,
        "cpu_count": cores,
        "time_serial_s": time_serial,
        "time_parallel_s": time_parallel,
        "speedup": speedup,
        # Pool wins only bind when the hardware can deliver them.
        "multicore": cores >= 2,
        "parallel_not_slower": bool(speedup and speedup >= 1.0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes, CI import/sanity check"
    )
    parser.add_argument(
        "--mode",
        choices=("both", "rebuild", "mmap"),
        default="both",
        help="restrict the cold-start section to one loader (identical "
        "time_* keys, for check_bench_regression.py)",
    )
    parser.add_argument(
        "--check-speedup",
        action="store_true",
        help="exit 1 when the largest corpus misses the 10x mmap bar "
        "(ignored with --smoke)",
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON report path"
    )
    args = parser.parse_args(argv)

    import tempfile

    sizes = [20] if args.smoke else [100, 300, 1000]
    repeats = max(1, args.repeats)
    with tempfile.TemporaryDirectory(prefix="bench-persist-") as tmp:
        workdir = Path(tmp)
        report = {
            "meta": {
                "bench": "persistence",
                "smoke": args.smoke,
                "mode": args.mode,
                "seed": args.seed,
                "sizes": sizes,
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
                "numpy": numpy_available(),
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            },
            "cold_start": bench_cold_start(
                workdir, sizes, repeats, args.mode, args.seed
            ),
        }
        if args.mode == "both":
            report["delta"] = bench_delta(
                workdir, sizes[-1], repeats, args.seed
            )
            report["transport"] = bench_transport(
                workdir, sizes[-1], args.workers, repeats, args.seed
            )

    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)

    if args.check_speedup and not args.smoke and args.mode == "both":
        largest = report["cold_start"][f"graphs_{sizes[-1]}"]
        if not largest["mmap_10x"]:
            print(
                f"FAIL: mmap cold start only {largest['speedup']:.1f}x faster "
                f"than rebuild at {largest['graphs']} graphs (bar: {SPEEDUP_BAR}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
