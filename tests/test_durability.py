"""Durability tests: fsync policy, guarded I/O, torn files, scrub, salvage.

The in-process "crashes" here monkeypatch ``durability._crash`` to raise
instead of SIGKILLing, which leaves the on-disk state exactly as a real
kill would (Python's buffered writes flush on close; SIGKILL loses only
what never reached the kernel) while keeping pytest alive.  The real
SIGKILL matrix lives in ``tests/test_crash_torture.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.config import DEFAULT_FSYNC_POLICY, ENV_FSYNC, EngineConfig
from repro.core.engine import SegosIndex
from repro.core.persistence import load_index, save_index
from repro.datasets import aids_like, sample_queries
from repro.errors import SidecarError
from repro.graphs import io as gio
from repro.perf import diskcat, durability
from repro.perf.diskcat import (
    DiskCatalog,
    SidecarHeader,
    read_header,
    scrub_sidecar,
)
from repro.resilience.faults import EMPTY_PLAN, FaultPlan


class SimulatedCrash(BaseException):
    """Stands in for SIGKILL: nothing downstream of the crash point runs."""


@pytest.fixture
def crashes(monkeypatch):
    """Make scripted crash points raise instead of killing pytest."""
    def _crash():
        raise SimulatedCrash
    monkeypatch.setattr(durability, "_crash", _crash)
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    return _crash


def build_pair(tmp_path, n=16, deltas=1):
    """A saved (text, sidecar) pair with *deltas* journal segments."""
    data = aids_like(n, seed=7, mean_order=8, stddev=2)
    engine = SegosIndex(data.graphs)
    path = tmp_path / "db.segos"
    save_index(engine, path)
    removed = []
    for gid in sorted(engine.gids())[:deltas]:
        engine.remove(gid)
        removed.append(gid)
        save_index(engine, path)
    return data, engine, path, removed


def answers(engine, data, tau=2):
    queries = sample_queries(data, 2, seed=11)
    return [
        (list(r.candidates), sorted(r.matches))
        for r in (engine.range_query(q, tau=tau, verify="exact") for q in queries)
    ]


# ---------------------------------------------------------------------------
# fsync policy plumbing
# ---------------------------------------------------------------------------

class TestFsyncPolicy:
    def test_explicit_arg_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_FSYNC, "never")
        assert durability.resolve_fsync_policy("always") == "always"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_FSYNC, "ALWAYS")
        assert durability.resolve_fsync_policy() == "always"

    def test_unknown_env_degrades_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_FSYNC, "paranoid")
        assert durability.resolve_fsync_policy() == DEFAULT_FSYNC_POLICY

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="fsync_policy"):
            EngineConfig(fsync_policy="paranoid")

    def test_config_env_knob(self, monkeypatch):
        monkeypatch.setenv(ENV_FSYNC, "never")
        assert EngineConfig.from_env().fsync_policy == "never"

    @pytest.mark.parametrize(
        "policy,critical,expect",
        [
            ("always", True, 1),
            ("always", False, 1),
            ("batch", True, 1),
            ("batch", False, 0),
            ("never", True, 0),
            ("never", False, 0),
        ],
    )
    def test_barrier_matrix(self, tmp_path, monkeypatch, policy, critical, expect):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))[1]
        )
        with open(tmp_path / "f", "wb") as out:
            out.write(b"x")
            durability.guarded_fsync(
                out,
                stage="t",
                plan=durability.resolve_io_plan(""),
                policy=policy,
                critical=critical,
            )
        assert len(calls) == expect

    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_save_load_identical_under_every_policy(self, tmp_path, policy):
        data = aids_like(12, seed=3)
        engine = SegosIndex(data.graphs, fsync_policy=policy)
        path = tmp_path / f"{policy}.segos"
        save_index(engine, path)
        reloaded = load_index(path)
        assert reloaded.disk_handle() is not None
        assert answers(reloaded, data) == answers(engine, data)


# ---------------------------------------------------------------------------
# Guarded primitives
# ---------------------------------------------------------------------------

class TestGuardedPrimitives:
    def test_torn_write_persists_offset_prefix(self, tmp_path, crashes):
        plan = FaultPlan.parse("io.write:stage=t:offset=3")
        target = tmp_path / "f"
        with pytest.raises(SimulatedCrash):
            with open(target, "wb") as out:
                durability.guarded_write(out, b"abcdef", stage="t", plan=plan)
        assert target.read_bytes() == b"abc"

    def test_write_without_rule_is_transparent(self, tmp_path):
        target = tmp_path / "f"
        with open(target, "wb") as out:
            durability.guarded_write(out, b"abcdef", stage="t", plan=EMPTY_PLAN)
        assert target.read_bytes() == b"abcdef"

    def test_fsync_crash_leaves_flushed_data(self, tmp_path, crashes):
        plan = FaultPlan.parse("io.fsync:stage=t")
        target = tmp_path / "f"
        with pytest.raises(SimulatedCrash):
            with open(target, "wb") as out:
                out.write(b"payload")
                durability.guarded_fsync(
                    out, stage="t", plan=plan, policy="always", critical=True
                )
        # flush happened before the crash: the bytes reached the kernel.
        assert target.read_bytes() == b"payload"

    def test_replace_crash_keeps_old_file(self, tmp_path, crashes):
        src, dst = tmp_path / "new", tmp_path / "old"
        src.write_bytes(b"new")
        dst.write_bytes(b"old")
        plan = FaultPlan.parse("io.replace:stage=t")
        with pytest.raises(SimulatedCrash):
            durability.guarded_replace(src, dst, stage="t", plan=plan)
        assert dst.read_bytes() == b"old"

    def test_stage_mismatch_never_fires(self, tmp_path):
        plan = FaultPlan.parse("io.replace:stage=other")
        src, dst = tmp_path / "new", tmp_path / "old"
        src.write_bytes(b"new")
        durability.guarded_replace(src, dst, stage="t", plan=plan)
        assert dst.read_bytes() == b"new"


# ---------------------------------------------------------------------------
# Bounds checks (short / corrupt files raise SidecarError, not struct.error)
# ---------------------------------------------------------------------------

class TestBoundsChecks:
    @pytest.mark.parametrize("region", ["meta", "table", "delta"])
    def test_header_claim_past_eof_rejected(self, tmp_path, region):
        _, _, path, _ = build_pair(tmp_path, deltas=1)
        sidecar = str(path) + ".segosx"
        header = read_header(sidecar)
        raw = bytearray(open(sidecar, "rb").read())
        if region == "meta":
            header.meta_len = len(raw) + 1
        elif region == "table":
            header.section_count = 10_000
        else:
            header.delta_bytes = len(raw)
        raw[: len(header.pack())] = header.pack()
        open(sidecar, "wb").write(bytes(raw))
        with pytest.raises(SidecarError):
            DiskCatalog(sidecar)

    def test_truncated_files_never_raise_struct_error(self, tmp_path):
        _, _, path, _ = build_pair(tmp_path, deltas=2)
        sidecar = str(path) + ".segosx"
        raw = open(sidecar, "rb").read()
        header = read_header(sidecar)
        # A spread of cut points across every region of the file.
        cuts = sorted(
            {
                0, 1, 100, 255, 256,
                header.meta_off + 1,
                header.table_off + 3,
                header.delta_off - 1,
                header.delta_off,
                header.delta_off + 5,
                len(raw) - 1,
            }
        )
        for cut in cuts:
            open(sidecar, "wb").write(raw[:cut])
            try:
                disk = DiskCatalog(sidecar)
            except SidecarError:
                continue
            try:
                disk.delta_segments()
            except SidecarError:
                pass
            finally:
                disk.close()


# ---------------------------------------------------------------------------
# Truncation sweep: every byte offset of the delta region (satellite)
# ---------------------------------------------------------------------------

class TestTruncationSweep:
    def test_every_delta_truncation_loads_or_degrades(self, tmp_path):
        data, engine, path, _ = build_pair(tmp_path, deltas=2)
        sidecar = str(path) + ".segosx"
        raw = open(sidecar, "rb").read()
        header = read_header(sidecar)
        assert header.delta_count == 2 and header.delta_off + header.delta_bytes == len(raw)
        expected = answers(engine, data)
        sampled = set(
            range(header.delta_off, len(raw), max(1, header.delta_bytes // 8))
        )
        for cut in range(header.delta_off, len(raw)):
            open(sidecar, "wb").write(raw[:cut])
            # Direct open: clean SidecarError, never a raw struct.error.
            try:
                disk = DiskCatalog(sidecar)
            except SidecarError:
                disk = None
            if disk is not None:
                try:
                    disk.delta_segments()
                except SidecarError:
                    pass
                finally:
                    disk.close()
            # load_index always succeeds (salvage or rebuild), same answers.
            loaded = load_index(path)
            assert sorted(loaded.gids()) == sorted(engine.gids()), cut
            if cut in sampled:
                assert answers(loaded, data) == expected, cut
        open(sidecar, "wb").write(raw)
        assert answers(load_index(path), data) == expected


# ---------------------------------------------------------------------------
# Scrub
# ---------------------------------------------------------------------------

class TestScrub:
    def test_clean_sidecar(self, tmp_path):
        _, _, path, _ = build_pair(tmp_path, deltas=1)
        report = scrub_sidecar(str(path) + ".segosx")
        assert report.clean and not report.fatal

    def test_garbage_tail_detected_and_truncated(self, tmp_path):
        data, engine, path, _ = build_pair(tmp_path, deltas=1)
        sidecar = str(path) + ".segosx"
        size = os.path.getsize(sidecar)
        with open(sidecar, "ab") as out:
            out.write(b"\xde\xad\xbe\xef" * 5)
        report = scrub_sidecar(sidecar)
        assert not report.clean and not report.repaired
        assert any("torn byte" in p for p in report.problems)
        report = scrub_sidecar(sidecar, repair=True)
        assert report.repaired
        assert os.path.getsize(sidecar) == size
        assert scrub_sidecar(sidecar).clean
        loaded = load_index(path)
        assert loaded.disk_handle() is not None
        assert answers(loaded, data) == answers(engine, data)

    def test_orphan_record_adopted_into_header(self, tmp_path, crashes):
        data, engine, path, _ = build_pair(tmp_path, deltas=1)
        sidecar = str(path) + ".segosx"
        before = read_header(sidecar)
        gid = sorted(engine.gids())[0]
        engine.remove(gid)
        engine.config = engine.config.override(fault_plan="io.write:stage=delta.header:times=1")
        with pytest.raises(SimulatedCrash):
            save_index(engine, path)
        # Record durable beyond the header, header untouched.
        assert read_header(sidecar).generation == before.generation
        report = scrub_sidecar(sidecar, repair=True)
        assert report.repaired
        assert any("adopt" in a for a in report.actions)
        after = read_header(sidecar)
        assert after.generation == before.generation + 1
        assert after.delta_count == before.delta_count + 1
        loaded = load_index(path)
        handle = loaded.disk_handle()
        assert handle is not None and handle.disk_generation == after.generation
        assert gid not in loaded.gids()

    def test_reverts_header_claiming_torn_bytes(self, tmp_path):
        data, engine, path, _ = build_pair(tmp_path, deltas=1)
        sidecar = str(path) + ".segosx"
        good = read_header(sidecar)
        # Simulate a power-loss reorder: the header vouches for record
        # bytes that never hit the disk (garbage landed instead).
        raw = bytearray(open(sidecar, "rb").read())
        torn = b"\x00" * 40
        bad = read_header(sidecar)
        bad.generation = good.generation + 1
        bad.delta_count = good.delta_count + 1
        bad.delta_bytes = good.delta_bytes + len(torn)
        raw[: len(bad.pack())] = bad.pack()
        raw += torn
        open(sidecar, "wb").write(bytes(raw))
        assert load_index(path).disk_handle() is None  # degraded, not wrong
        report = scrub_sidecar(sidecar, repair=True)
        assert report.repaired
        assert any("revert" in a for a in report.actions)
        after = read_header(sidecar)
        assert after.generation == good.generation
        assert after.delta_count == good.delta_count
        # The acceptance bar: repaired sidecar mmap-attaches, no rebuild.
        loaded = load_index(path)
        assert loaded.disk_handle() is not None
        assert answers(loaded, data) == answers(engine, data)

    def test_corrupt_section_is_fatal(self, tmp_path):
        _, _, path, _ = build_pair(tmp_path, deltas=0)
        sidecar = str(path) + ".segosx"
        disk = DiskCatalog(sidecar)
        offset, length, _ = next(iter(disk._sections.values()))
        disk.close()
        with open(sidecar, "r+b") as out:
            out.seek(offset)
            chunk = out.read(4)
            out.seek(offset)
            out.write(bytes(b ^ 0xFF for b in chunk))
        report = scrub_sidecar(sidecar, repair=True)
        assert report.fatal and not report.repaired

    def test_missing_file(self, tmp_path):
        report = scrub_sidecar(tmp_path / "absent.segosx")
        assert report.fatal

    def test_repair_is_idempotent(self, tmp_path):
        _, _, path, _ = build_pair(tmp_path, deltas=1)
        sidecar = str(path) + ".segosx"
        with open(sidecar, "ab") as out:
            out.write(b"junk")
        assert scrub_sidecar(sidecar, repair=True).repaired
        assert scrub_sidecar(sidecar, repair=True).clean


# ---------------------------------------------------------------------------
# Forward salvage in load_index
# ---------------------------------------------------------------------------

class TestLoadSalvage:
    def test_crash_before_header_rewrite_salvages(self, tmp_path, crashes):
        data, engine, path, _ = build_pair(tmp_path, deltas=1)
        sidecar = str(path) + ".segosx"
        before = read_header(sidecar)
        gid = sorted(engine.gids())[0]
        engine.remove(gid)
        # Crash before any header byte lands: the record (already past its
        # fsync barrier) is the orphan that salvage must adopt.
        engine.config = engine.config.override(
            fault_plan="io.write:stage=delta.header:times=1"
        )
        with pytest.raises(SimulatedCrash):
            save_index(engine, path)
        loaded = load_index(path)
        handle = loaded.disk_handle()
        assert handle is not None, "salvage should mmap-attach, not rebuild"
        assert handle.disk_generation == before.generation + 1
        assert handle.delta_count == before.delta_count + 1
        assert gid not in loaded.gids()
        rebuilt = load_index(path, mmap=False)
        assert answers(loaded, data) == answers(rebuilt, data)

    def test_salvaged_pair_saves_cleanly_afterwards(self, tmp_path, crashes):
        data, engine, path, _ = build_pair(tmp_path, deltas=1)
        engine.remove(sorted(engine.gids())[0])
        engine.config = engine.config.override(fault_plan="io.write:stage=delta.header:times=1")
        with pytest.raises(SimulatedCrash):
            save_index(engine, path)
        loaded = load_index(path)
        assert loaded.disk_handle() is not None
        loaded.remove(sorted(loaded.gids())[0])
        save_index(loaded, path)  # baseline mismatch -> clean full save
        final = load_index(path)
        assert final.disk_handle() is not None
        assert scrub_sidecar(str(path) + ".segosx").clean
        assert sorted(final.gids()) == sorted(loaded.gids())

    def test_partial_record_does_not_salvage_wrong(self, tmp_path, crashes):
        data, engine, path, _ = build_pair(tmp_path, deltas=1)
        old_gids = sorted(engine.gids())
        engine.remove(old_gids[0])
        engine.config = engine.config.override(fault_plan="io.write:stage=delta.record:offset=9:times=1")
        with pytest.raises(SimulatedCrash):
            save_index(engine, path)
        # 9 torn bytes of record, text already new: degrade to rebuild.
        loaded = load_index(path)
        assert loaded.disk_handle() is None
        assert sorted(loaded.gids()) == old_gids[1:]
