"""Query statistics shared by SEGOS and the baselines.

The paper's evaluation reports, besides wall-clock time:

* **access number** — how many graphs had a mapping distance computed
  (Figure 12); this is the metric SEGOS's CA stage minimises;
* **candidate size** — how many graphs survive filtering and would be sent
  to exact-GED verification (Figures 15–18);
* **TA overhead** — sorted accesses spent in the top-k sub-unit stage
  (Figure 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class QueryStats:
    """Counters filled in by one range-query execution."""

    #: graphs whose (partial or full) mapping distance was computed
    graphs_accessed: int = 0
    #: graphs for which the full µ was computed (superset counter above)
    full_mapping_computations: int = 0
    #: graphs resolved purely by constant-time aggregation bounds
    resolved_by_aggregation: int = 0
    #: graphs pruned per bound name (zeta / l_mu / partial_mu / l_m / omega /
    #: never_seen, ...)
    pruned_by: Dict[str, int] = field(default_factory=dict)
    #: entries scanned across all CA graph lists
    list_entries_scanned: int = 0
    #: sorted accesses performed by the TA top-k sub-unit searches
    ta_accesses: int = 0
    #: distinct TA searches executed (duplicate query stars share one)
    ta_searches: int = 0
    #: graphs that reached the candidate set (including confirmed matches)
    candidates: int = 0
    #: candidates confirmed as matches by an upper bound (no GED needed)
    confirmed_matches: int = 0
    #: graphs never seen in any list and filtered by the halting argument
    filtered_unseen: int = 0
    #: graphs processed by the linear fallback (lists exhausted, no halt)
    linear_fallback: int = 0

    def count_prune(self, bound: str) -> None:
        self.pruned_by[bound] = self.pruned_by.get(bound, 0) + 1

    def summary(self) -> str:
        """One-line human-readable account of where the filtering work went.

        Example: ``accessed 12 graphs (9 full µ) | pruned: l_mu=30 omega=55 |
        candidates: 3 (1 confirmed)``.
        """
        pruned = " ".join(
            f"{name}={count}" for name, count in sorted(self.pruned_by.items())
        )
        parts = [
            f"accessed {self.graphs_accessed} graphs "
            f"({self.full_mapping_computations} full µ)",
            f"pruned: {pruned or 'nothing'}",
            f"candidates: {self.candidates} ({self.confirmed_matches} confirmed)",
        ]
        if self.linear_fallback:
            parts.append(f"linear fallback: {self.linear_fallback}")
        return " | ".join(parts)

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another run's counters into this one (for averaging)."""
        self.graphs_accessed += other.graphs_accessed
        self.full_mapping_computations += other.full_mapping_computations
        self.resolved_by_aggregation += other.resolved_by_aggregation
        self.list_entries_scanned += other.list_entries_scanned
        self.ta_accesses += other.ta_accesses
        self.ta_searches += other.ta_searches
        self.candidates += other.candidates
        self.confirmed_matches += other.confirmed_matches
        self.filtered_unseen += other.filtered_unseen
        self.linear_fallback += other.linear_fallback
        for key, value in other.pruned_by.items():
            self.pruned_by[key] = self.pruned_by.get(key, 0) + value
