"""Tests for the VF2-style isomorphism matcher."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import erdos_renyi
from repro.graphs.isomorphism import are_isomorphic, find_isomorphism
from repro.graphs.model import Graph


def shuffled_copy(rng: random.Random, graph: Graph) -> Graph:
    """Random relabelling of vertex ids (an isomorphic graph)."""
    ids = list(graph.vertices())
    new_ids = list(range(100, 100 + len(ids)))
    rng.shuffle(new_ids)
    mapping = dict(zip(ids, new_ids))
    return Graph(
        {mapping[v]: graph.label(v) for v in ids},
        [(mapping[u], mapping[v]) for u, v in graph.edges()],
    )


class TestKnownCases:
    def test_identical(self, paper_g1):
        assert are_isomorphic(paper_g1, paper_g1)

    def test_empty_graphs(self):
        assert are_isomorphic(Graph(), Graph())
        assert find_isomorphism(Graph(), Graph()) == {}

    def test_relabelled_ids(self):
        a = Graph(["x", "y"], [(0, 1)])
        b = Graph({5: "y", 9: "x"}, [(5, 9)])
        mapping = find_isomorphism(a, b)
        assert mapping == {0: 9, 1: 5}

    def test_different_labels(self):
        assert not are_isomorphic(Graph(["a"]), Graph(["b"]))

    def test_different_edges(self):
        a = Graph(["a", "a", "a"], [(0, 1)])
        b = Graph(["a", "a", "a"], [(0, 1), (1, 2)])
        assert not are_isomorphic(a, b)

    def test_same_invariants_not_isomorphic(self):
        # Two graphs with equal label/degree profiles but different shape:
        # path a-b ... a-b vs two crossed pairs.
        a = Graph(["a", "b", "a", "b"], [(0, 1), (2, 3)])
        b = Graph(["a", "b", "a", "b"], [(0, 3), (2, 1)])
        assert are_isomorphic(a, b)  # these ARE isomorphic
        c = Graph(["a", "a", "b", "b"], [(0, 1), (2, 3)])  # a-a and b-b
        assert not are_isomorphic(a, c)

    def test_mapping_is_valid(self, paper_g2, rng):
        twin = shuffled_copy(rng, paper_g2)
        mapping = find_isomorphism(paper_g2, twin)
        assert mapping is not None
        assert sorted(mapping) == sorted(paper_g2.vertices())
        for u, v in paper_g2.edges():
            assert twin.has_edge(mapping[u], mapping[v])
        for v in paper_g2.vertices():
            assert paper_g2.label(v) == twin.label(mapping[v])


class TestAgainstGed:
    """λ = 0 ⟺ isomorphic: two independent implementations must agree."""

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_on_random_pairs(self, seed):
        rng = random.Random(seed)
        g1 = erdos_renyi(rng, "ab", rng.randint(1, 5), 0.4)
        if seed % 2:
            g2 = shuffled_copy(rng, g1)
        else:
            g2 = erdos_renyi(rng, "ab", rng.randint(1, 5), 0.4)
        iso = are_isomorphic(g1, g2)
        ged_zero = graph_edit_distance(g1, g2, threshold=0) is not None
        assert iso == ged_zero

    def test_shuffled_always_isomorphic(self, rng):
        for _ in range(10):
            g = erdos_renyi(rng, "abc", rng.randint(1, 7), 0.4)
            assert are_isomorphic(g, shuffled_copy(rng, g))
