"""Durable-write primitives: policy-gated fsync barriers + crash points.

Every byte the persistence layer puts on disk flows through the four
guarded primitives in this module.  They do two jobs at once:

1. **Durability discipline.**  ``EngineConfig.fsync_policy``
   (``REPRO_FSYNC``) decides which barriers actually reach the platters:

   ``always``
       fsync at every barrier, plus the parent directory after renames —
       the full power-loss story.
   ``batch`` (default)
       only the *ordering-critical* barriers: the delta record before the
       header that claims it, the temp file before its ``os.replace``,
       and the directory entry after the replace.  Trailing hardening
       syncs (the in-place header rewrite) are skipped — losing them
       costs at most the delta tail, which recovery salvages or truncates.
   ``never``
       no fsync at all.  Write *ordering* through the page cache is still
       preserved, so a SIGKILLed process can never corrupt the pair; the
       bet is purely against power loss.

2. **Deterministic crash points.**  The ``io.write`` / ``io.fsync`` /
   ``io.replace`` / ``io.truncate`` injection points of
   :mod:`repro.resilience.faults` fire here.  A matching rule SIGKILLs the
   process at exactly that syscall boundary — after persisting the leading
   ``offset=`` bytes for ``io.write``, simulating a torn write.  Each call
   site passes a distinct ``stage=`` label, so a fault plan can stop a
   writer between any two durability steps and the kill-torture harness
   can enumerate every window exhaustively.

The crash is a real ``SIGKILL`` (no atexit, no finally blocks), which is
the whole point: whatever the primitives managed to push past the kernel
boundary is what recovery gets to work with.
"""

from __future__ import annotations

import os
import signal
from typing import Optional

from ..config import DEFAULT_FSYNC_POLICY, ENV_FSYNC, FSYNC_POLICIES, env_str
from ..resilience.faults import FaultPlan, resolve_fault_plan

__all__ = [
    "guarded_write",
    "guarded_fsync",
    "guarded_replace",
    "guarded_truncate",
    "fsync_dir",
    "resolve_fsync_policy",
    "resolve_io_plan",
]


def resolve_fsync_policy(policy: Optional[str] = None) -> str:
    """Resolve the fsync discipline: explicit arg > ``REPRO_FSYNC`` > default.

    The environment path degrades unknown names to the default (the shared
    robustness contract of env knobs); explicit bad arguments were already
    rejected by ``EngineConfig`` validation, so this never raises.
    """
    if policy in FSYNC_POLICIES:
        return policy
    raw = env_str(ENV_FSYNC).strip().lower()
    return raw if raw in FSYNC_POLICIES else DEFAULT_FSYNC_POLICY


def resolve_io_plan(plan=None) -> FaultPlan:
    """Resolve a fault plan for one persistence operation.

    Accepts an already-parsed (stateful) :class:`FaultPlan` — the caller
    that owns a whole save threads one object through every primitive so
    ``times=`` countdowns span the operation — or a spec string / ``None``
    (→ ``REPRO_FAULT_PLAN``), for direct, engine-less calls.
    """
    return resolve_fault_plan(plan)


def _crash() -> None:  # pragma: no cover - only runs in torture subprocesses
    """Die as if SIGKILLed at this instant (tests monkeypatch this)."""
    os.kill(os.getpid(), signal.SIGKILL)
    # SIGKILL is not maskable; if we are somehow still alive (a test
    # monkeypatched os.kill away without replacing _crash), hard-exit.
    os._exit(137)


def guarded_write(out, data: bytes, *, stage: str, plan: FaultPlan) -> None:
    """Write *data* to *out*, honouring scripted torn-write crashes.

    A matching ``io.write`` rule persists only the first ``offset`` bytes
    (flushed so they actually reach the kernel) and then kills the process.
    """
    rule = plan.fire("io.write", stage=stage)
    if rule is not None:
        out.write(data[: max(0, rule.offset)])
        out.flush()
        _crash()
    out.write(data)


def guarded_fsync(
    out, *, stage: str, plan: FaultPlan, policy: str, critical: bool = True
) -> None:
    """Flush *out* and, policy permitting, fsync it.

    The flush always happens — it moves Python's userspace buffer to the
    kernel, which is what preserves write *ordering* even under
    ``never``.  The fsync itself runs under ``always`` unconditionally
    and under ``batch`` only when the barrier is ``critical`` (ordering
    matters, not just tail freshness).  A matching ``io.fsync`` rule
    kills the process just before the sync — the data sits in the page
    cache, exactly the state a crash in this window leaves behind.
    """
    if plan.fire("io.fsync", stage=stage) is not None:
        out.flush()
        _crash()
    out.flush()
    if policy == "always" or (policy == "batch" and critical):
        os.fsync(out.fileno())


def guarded_replace(src, dst, *, stage: str, plan: FaultPlan) -> None:
    """``os.replace`` with a scripted crash just before the rename."""
    if plan.fire("io.replace", stage=stage) is not None:
        _crash()
    os.replace(src, dst)


def guarded_truncate(out, size: int, *, stage: str, plan: FaultPlan) -> None:
    """``ftruncate`` with a scripted crash just before the truncate."""
    if plan.fire("io.truncate", stage=stage) is not None:
        _crash()
    out.truncate(size)


def fsync_dir(path, *, stage: str, plan: FaultPlan, policy: str) -> None:
    """fsync the directory containing *path*, making its renames durable.

    Runs under ``always`` and ``batch`` (a rename that evaporates on power
    loss would undo an otherwise-complete save); ``never`` skips it.
    Platforms that refuse ``open(dir)`` (some filesystems/containers) are
    tolerated — the discipline degrades, it does not crash the save.
    """
    if plan.fire("io.fsync", stage=stage) is not None:
        _crash()
    if policy == "never":
        return
    parent = os.path.dirname(os.path.abspath(os.fspath(path))) or "."
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
