"""Tests for the pipelined three-stage query processor (Section V-E)."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import SegosIndex
from repro.core.pipeline import PIPELINE_K, PipelinedSegos
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import corpus, make_label_alphabet, mutate
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def pipeline_setup():
    rng = random.Random(77)
    graphs = {
        f"g{i}": g
        for i, g in enumerate(
            corpus(rng, 30, kind="chemical", mean_order=7, stddev=2)
        )
    }
    engine = SegosIndex(graphs, k=15, h=30)
    return rng, graphs, engine, PipelinedSegos(engine)


class TestPipeline:
    def test_default_k_matches_paper(self, pipeline_setup):
        _, _, engine, pipe = pipeline_setup
        assert pipe.k == PIPELINE_K == 20

    def test_invalid_k(self, pipeline_setup):
        _, _, engine, _ = pipeline_setup
        with pytest.raises(ValueError):
            PipelinedSegos(engine, k=0)

    def test_query_validation(self, pipeline_setup):
        _, _, _, pipe = pipeline_setup
        with pytest.raises(ValueError):
            pipe.range_query(Graph(), tau=1)
        with pytest.raises(ValueError):
            pipe.range_query(Graph(["a"]), tau=-1)
        with pytest.raises(ValueError):
            pipe.range_query(Graph(["a"]), tau=1, verify="what")

    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_no_false_negatives(self, pipeline_setup, tau):
        rng, graphs, _, pipe = pipeline_setup
        labels = make_label_alphabet(63, prefix="C")
        query = mutate(
            random.Random(tau), rng.choice(list(graphs.values())), 1, labels
        )
        truth = {
            gid
            for gid, g in graphs.items()
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        result = pipe.range_query(query, tau=tau)
        assert truth <= set(result.candidates)
        assert result.matches <= truth

    def test_exact_verification_matches_plain_engine(self, pipeline_setup):
        rng, graphs, engine, pipe = pipeline_setup
        query = rng.choice(list(graphs.values())).copy()
        tau = 2
        plain = engine.range_query(query, tau=tau, verify="exact")
        piped = pipe.range_query(query, tau=tau, verify="exact")
        assert piped.matches == plain.matches

    def test_exact_verification_surfaces_scheduler_stats(self, pipeline_setup):
        """The budgeted scheduler replaced the old bare `ged_within` loop;
        its bookkeeping must reach the pipelined stats."""
        rng, graphs, engine, pipe = pipeline_setup
        query = rng.choice(list(graphs.values())).copy()
        result = pipe.range_query(query, tau=2, verify="exact")
        stats = result.stats
        # Every candidate was either pre-confirmed, settled by bounds, or
        # went through a budgeted A* run.
        assert stats.settled_by_bounds + stats.astar_runs >= 0
        if result.candidates:
            assert stats.settled_by_bounds + stats.astar_runs > 0 or result.matches
        assert result.verified

    def test_exact_verification_budget_makes_undecided_honest(self, pipeline_setup):
        """A starved budget must flip `verified` off, never drop candidates."""
        rng, graphs, _, pipe = pipeline_setup
        query = rng.choice(list(graphs.values())).copy()
        generous = pipe.range_query(query, tau=2, verify="exact")
        starved = pipe.range_query(query, tau=2, verify="exact", verify_budget=1)
        assert set(starved.candidates) == set(generous.candidates)
        assert starved.matches <= generous.matches
        if starved.matches != generous.matches:
            assert not starved.verified

    def test_exact_verification_with_workers_matches_serial(self, pipeline_setup):
        rng, graphs, _, pipe = pipeline_setup
        query = rng.choice(list(graphs.values())).copy()
        serial = pipe.range_query(query, tau=2, verify="exact")
        fanned = pipe.range_query(query, tau=2, verify="exact", verify_workers=2)
        assert fanned.matches == serial.matches
        assert fanned.stats.astar_runs == serial.stats.astar_runs

    def test_repeated_runs_are_stable(self, pipeline_setup):
        """Thread scheduling must not change the verified answer set."""
        rng, graphs, _, pipe = pipeline_setup
        query = rng.choice(list(graphs.values())).copy()
        results = [
            pipe.range_query(query, tau=1, verify="exact").matches for _ in range(5)
        ]
        assert all(r == results[0] for r in results)

    def test_stats_populated(self, pipeline_setup):
        rng, graphs, _, pipe = pipeline_setup
        query = rng.choice(list(graphs.values())).copy()
        result = pipe.range_query(query, tau=1)
        assert result.stats.ta_searches >= 1
        assert result.stats.candidates == len(result.candidates)
        assert result.elapsed > 0

    def test_single_graph_database(self):
        engine = SegosIndex()
        engine.add("only", Graph(["a", "b"], [(0, 1)]))
        pipe = PipelinedSegos(engine)
        result = pipe.range_query(Graph(["a", "b"], [(0, 1)]), tau=0)
        assert result.candidates == ["only"]

    def test_query_dissimilar_to_everything(self, pipeline_setup):
        _, graphs, _, pipe = pipeline_setup
        query = Graph(["Z1", "Z2", "Z3"], [(0, 1), (1, 2)])
        result = pipe.range_query(query, tau=0)
        assert result.candidates == []
