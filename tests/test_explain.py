"""Tests for the query explanation facility."""

from __future__ import annotations

import pytest

from repro.core.engine import SegosIndex
from repro.core.explain import explain_range_query
from repro.datasets import aids_like
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def explain_setup():
    data = aids_like(25, seed=7, mean_order=7, stddev=2)
    return data, SegosIndex(data.graphs, k=10, h=30)


class TestExplain:
    def test_matches_plain_query(self, explain_setup):
        data, engine = explain_setup
        query = next(iter(data.graphs.values())).copy()
        explanation = explain_range_query(engine, query, tau=2)
        plain = engine.range_query(query, tau=2)
        assert set(explanation.candidates) == set(plain.candidates)

    def test_star_traces_cover_distinct_stars(self, explain_setup):
        data, engine = explain_setup
        query = next(iter(data.graphs.values())).copy()
        explanation = explain_range_query(engine, query, tau=2)
        assert explanation.distinct_stars == len(explanation.star_traces)
        assert (
            sum(trace.occurrences for trace in explanation.star_traces)
            == explanation.query_stars
            == query.order
        )

    def test_self_star_found_with_sed_zero(self, explain_setup):
        data, engine = explain_setup
        query = next(iter(data.graphs.values())).copy()
        explanation = explain_range_query(engine, query, tau=1)
        assert all(trace.best_sed == 0 for trace in explanation.star_traces)

    def test_render_contains_stage_lines(self, explain_setup):
        data, engine = explain_setup
        query = next(iter(data.graphs.values())).copy()
        text = explain_range_query(engine, query, tau=2).render()
        assert "TA stage:" in text
        assert "CA stage:" in text
        assert "DC stage:" in text
        assert "result:" in text

    def test_validation(self, explain_setup):
        _, engine = explain_setup
        with pytest.raises(ValueError):
            explain_range_query(engine, Graph(), tau=1)
        with pytest.raises(ValueError):
            explain_range_query(engine, Graph(["a"]), tau=-1)

    def test_parameter_overrides(self, explain_setup):
        data, engine = explain_setup
        query = next(iter(data.graphs.values())).copy()
        explanation = explain_range_query(engine, query, tau=1, k=3, h=5)
        assert explanation.k == 3
        assert explanation.h == 5
        assert all(trace.returned <= 3 for trace in explanation.star_traces)

    def test_stats_summary_string(self, explain_setup):
        data, engine = explain_setup
        query = next(iter(data.graphs.values())).copy()
        explanation = explain_range_query(engine, query, tau=1)
        summary = explanation.stats.summary()
        assert "accessed" in summary
        assert "candidates:" in summary
