"""Saving and loading a SEGOS database: text + mmap sidecar.

The durable artifact is unchanged from the first version of this module:
a normal transaction-format graph file whose first line is a ``#segos
{...}`` JSON comment header.  It stays portable, diff-able, and readable
by plain :func:`repro.graphs.io.load`.  Version 2 of the header persists
the engine's *complete* resolved :class:`~repro.config.EngineConfig`
(version-1 files, which recorded only ``k``/``h``/``partial_fraction``,
still load).

What changed is the cold-start path.  Rebuilding the two-level index is a
linear scan (the paper's own construction argument, Figure 14), but linear
in *Python decompose-and-insert* work — the dominant cost of opening a
large database, paid again by every worker process.  ``save_index`` now
also writes a derived, disposable **index sidecar** (``<db>.segosx``, see
:mod:`repro.perf.diskcat`) holding the index as memory-mappable columnar
arrays.  ``load_index`` memory-maps a *fresh* sidecar — freshness is
``(size, SHA-256)`` of the graph file recorded in the sidecar header —
attaches lazily-parsed graph storage over the text file, and replays any
delta segments; a missing, stale, or corrupt sidecar silently falls back
to the streaming rebuild.  Either way the caller gets the same engine,
answering byte-identically.

Small mutations between saves append a delta segment to the sidecar
instead of rewriting it; once the journal outgrows ``delta_compact`` ×
base-graph-count the next save compacts.  The ``(text, sidecar)`` pair is
kept crash-consistent by ordering: the text is replaced atomically first,
and the sidecar's recorded source hash is updated last, so any crash in
between leaves a stale sidecar (→ rebuild), never a wrong index.  Every
write flows through :mod:`repro.perf.durability`'s guarded primitives,
which enforce the fsync discipline ``EngineConfig.fsync_policy`` selects
(and host the deterministic crash points the kill-torture harness uses).
A crash *inside* ``append_delta`` — record durably on disk, header not
yet rewritten — is cheaper than stale: ``_try_mmap_load`` salvages the
orphan tail records (each carries the post-append source ``(size, sha)``)
and attaches without a rebuild; ``repro index scrub --repair`` performs
the equivalent fix in place.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..config import ENV_MMAP, EngineConfig, env_bool
from ..errors import ParseError, SidecarError, StaleSidecarError
from ..graphs import io as gio
from ..perf import diskcat
from ..perf.diskcat import DiskHandle, default_sidecar_path, file_sha256
from ..perf.durability import (
    fsync_dir,
    guarded_fsync,
    guarded_replace,
    resolve_fsync_policy,
    resolve_io_plan,
)
from .engine import SegosIndex

PathLike = Union[str, Path]

_HEADER_PREFIX = "#segos "
#: Current text-header version.  v1 recorded only k/h/partial_fraction;
#: v2 records the full resolved EngineConfig.  Both load.
_FORMAT_VERSION = 2

__all__ = ["DiskHandle", "load_index", "save_index", "sidecar_path_for"]


def sidecar_path_for(path: PathLike, config: EngineConfig, override: Optional[PathLike] = None) -> str:
    """Resolve the sidecar path: explicit arg > config knob > ``<db>.segosx``."""
    if override is not None:
        return os.fspath(override)
    if config.index_path:
        return config.index_path
    return default_sidecar_path(path)


def _use_mmap(config: EngineConfig, mmap: Optional[bool]) -> bool:
    """Resolve the mmap decision: call arg > environment > config knob."""
    if mmap is not None:
        return mmap
    return env_bool(ENV_MMAP, config.mmap)


# ---------------------------------------------------------------------------
# Text header
# ---------------------------------------------------------------------------

def _parse_header(first_line: str) -> Tuple[Optional[EngineConfig], bool]:
    """Parse the ``#segos`` header line; returns ``(config, had_header)``.

    Plain transaction files (no header) yield ``(None, False)``; the
    caller then uses environment defaults, matching a bare ``SegosIndex()``.
    """
    if not first_line.startswith(_HEADER_PREFIX):
        return None, False
    try:
        header = json.loads(first_line[len(_HEADER_PREFIX):])
    except json.JSONDecodeError as exc:
        raise ParseError(f"malformed #segos header: {exc}", 1) from exc
    version = header.get("version")
    if version == 1:
        # Legacy header: only the three paper knobs; everything else comes
        # from the loading process's environment, as v1 always behaved.
        try:
            return (
                EngineConfig.from_env(
                    k=int(header["k"]),
                    h=int(header["h"]),
                    partial_fraction=float(header["partial_fraction"]),
                ),
                True,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParseError(f"invalid v1 #segos header: {exc}", 1) from exc
    if version == _FORMAT_VERSION:
        try:
            return EngineConfig(**header["config"]), True
        except (KeyError, TypeError, ValueError) as exc:
            raise ParseError(f"invalid v2 #segos header: {exc}", 1) from exc
    raise ParseError(f"unsupported segos file version {version!r}", 1)


def _header_line(engine: SegosIndex) -> str:
    header = {
        "version": _FORMAT_VERSION,
        "graphs": len(engine),
        "config": dataclasses.asdict(engine.config),
    }
    return _HEADER_PREFIX + json.dumps(header, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------

def load_index(
    path: PathLike,
    *,
    mmap: Optional[bool] = None,
    index_path: Optional[PathLike] = None,
) -> SegosIndex:
    """Open a database written by :func:`save_index` (or a plain graph file).

    When ``mmap`` resolves on (call arg > ``REPRO_MMAP`` > the persisted
    config's knob) and a fresh sidecar sits next to the file, the index is
    memory-mapped instead of rebuilt: graphs parse lazily on first access,
    the columnar kernels run directly over the mapped pages, and the
    returned engine carries a :class:`~repro.perf.diskcat.DiskHandle` that
    the worker-pool paths ship in place of a pickled engine.  Any sidecar
    problem — absent, stale, corrupt, truncated — falls back to the
    streaming rebuild; the two paths return byte-identical engines.
    """
    path_str = os.fspath(path)
    with open(path_str, "r", encoding="utf-8") as handle:
        first = handle.readline()
        config, had_header = _parse_header(first)
        if config is None:
            config = EngineConfig.from_env()

        sidecar = sidecar_path_for(path_str, config, index_path)
        if _use_mmap(config, mmap) and os.path.exists(sidecar):
            engine = _try_mmap_load(path_str, sidecar, config)
            if engine is not None:
                return engine

        # Streaming rebuild: graphs feed the engine one at a time straight
        # off the parser — no intermediate list of the whole database.
        if not had_header:
            handle.seek(0)
        engine = SegosIndex(config=config)
        for gid, graph in gio.iter_graphs(handle):
            engine.add(gid, graph)
        engine._persist_journal = []
    return engine


def _try_mmap_load(
    path: str, sidecar: str, config: EngineConfig
) -> Optional[SegosIndex]:
    """Attach a mapped engine from *sidecar*, or ``None`` to rebuild.

    A stale pairing (the text is newer than the sidecar header claims)
    gets one salvage attempt before falling back: a writer SIGKILLed
    between the delta-record barrier and the header rewrite leaves the
    new record durably on disk *beyond* the header — adopting it
    reattaches without a rebuild.
    """
    try:
        disk = diskcat.DiskCatalog(sidecar)
    except (SidecarError, OSError):
        return None
    try:
        header = disk.header
        try:
            return _attach_mapped(
                path,
                sidecar,
                disk,
                config,
                segments=disk.delta_segments(),
                generation=header.generation,
                source_size=header.source_size,
                source_sha=header.source_sha,
                delta_count=header.delta_count,
            )
        except StaleSidecarError:
            engine = _salvage_mmap_load(path, sidecar, disk, config)
            if engine is None:
                raise
            return engine
    except (SidecarError, ParseError, OSError):
        disk.close()
        return None


def _salvage_mmap_load(
    path: str, sidecar: str, disk: "diskcat.DiskCatalog", config: EngineConfig
) -> Optional[SegosIndex]:
    """Adopt orphan delta records a crashed append left past the header.

    Only an *exact* match salvages: the covered journal prefix must be
    intact and the last complete tail record's salvage token must equal
    the current text's ``(size, sha)`` — then replaying through the tail
    deterministically reproduces the state the dead writer was committing.
    (Workers reopening the same pair rerun the same salvage and reach the
    same generation, so the DiskHandle equality checks still hold.)
    Anything less returns ``None`` and the caller rebuilds.
    """
    try:
        scan = disk.salvage_scan()
    except (SidecarError, OSError):
        return None
    adopted = diskcat.adoptable_tail(scan)
    if not scan.covered_ok or not adopted:
        return None
    last = adopted[-1]
    try:
        if os.path.getsize(path) != last.source_size:
            return None
    except OSError:
        return None
    try:
        return _attach_mapped(
            path,
            sidecar,
            disk,
            config,
            segments=scan.covered + adopted,
            generation=last.generation,
            source_size=last.source_size,
            source_sha=last.source_sha,
            delta_count=disk.header.delta_count + len(adopted),
        )
    except (StaleSidecarError, SidecarError, ParseError, OSError):
        return None


def _attach_mapped(
    path: str,
    sidecar: str,
    disk: "diskcat.DiskCatalog",
    config: EngineConfig,
    *,
    segments: List["diskcat.DeltaSegment"],
    generation: int,
    source_size: int,
    source_sha: bytes,
    delta_count: int,
) -> SegosIndex:
    """Attach + replay one candidate ``(segments, source)`` state."""
    if os.path.getsize(path) != source_size:
        raise StaleSidecarError(
            f"graph file {path!r} changed size",
            path=os.fspath(sidecar),
            expected_sha=source_sha,
        )
    # LazyGraphStore reads + hashes the text once; passing the expected
    # digest makes that single pass double as the freshness check.
    store = diskcat.LazyGraphStore(
        path, base_gids=disk.gid_list(), expected_sha=source_sha
    )
    wrapper = diskcat.MappedTwoLevelIndex(disk)
    # Seed the kernel snapshot with the zero-copy mapped columns.  It is
    # keyed to the *base* generation: delta replay below bumps the
    # counter, so a post-replay query transparently rebuilds it.
    wrapper._columnar_snapshot = disk.columnar(wrapper.generation)
    engine = SegosIndex(config=config)
    engine._attach_mapped_storage(wrapper, store, None)
    for segment in segments:
        _replay_segment(engine, segment)
    if engine.index.generation != generation:
        raise StaleSidecarError(
            "delta replay did not reach the expected generation",
            path=os.fspath(sidecar),
            expected_generation=generation,
            found_generation=engine.index.generation,
        )
    engine._sync_disk_source(
        DiskHandle(
            graph_path=os.path.abspath(path),
            index_path=os.path.abspath(sidecar),
            local_generation=engine.index.generation,
            disk_generation=generation,
            source_sha=source_sha.hex(),
            source_size=source_size,
            delta_count=delta_count,
            base_graphs=disk.n_graphs,
            delta_ops=sum(len(segment.ops) for segment in segments),
        )
    )
    return engine


def _replay_segment(engine: SegosIndex, segment: "diskcat.DeltaSegment") -> None:
    """Strictly replay one delta segment through the engine mutators.

    Strict means: an ``add`` of a present gid, or a ``remove``/``update``
    of an absent one, raises :class:`StaleSidecarError` — tolerating them
    would make the generation arithmetic nondeterministic across
    processes, which is what the pool paths' freshness checks hang on.
    """
    for kind, gid, payload in segment.ops:
        present = gid in engine
        if kind == "add":
            if present:
                raise StaleSidecarError(f"delta adds already-present graph {gid!r}")
            engine.add(gid, _parse_delta_graph(gid, payload))
        elif kind == "remove":
            if not present:
                raise StaleSidecarError(f"delta removes absent graph {gid!r}")
            engine.remove(gid)
        elif kind == "update":
            if not present:
                raise StaleSidecarError(f"delta updates absent graph {gid!r}")
            engine.remove(gid)
            engine.add(gid, _parse_delta_graph(gid, payload))
        else:
            raise StaleSidecarError(f"unknown delta op {kind!r}")


def _parse_delta_graph(gid: str, payload: Optional[str]):
    if not payload:
        raise StaleSidecarError(f"delta op for graph {gid!r} carries no payload")
    try:
        parsed = gio.loads(payload)
    except ParseError as exc:
        raise StaleSidecarError(f"unparsable delta payload for {gid!r}: {exc}") from exc
    if len(parsed) != 1 or parsed[0][0] != gid:
        raise StaleSidecarError(f"delta payload does not describe graph {gid!r}")
    return parsed[0][1]


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------

def save_index(
    engine: SegosIndex,
    path: PathLike,
    *,
    mmap: Optional[bool] = None,
    index_path: Optional[PathLike] = None,
) -> None:
    """Write *engine*'s database (text) and index sidecar to *path*.

    The text file is replaced atomically.  The sidecar is written in full
    on a first save, *appended to* (one delta segment holding the net
    per-graph changes since the last sync) when the engine was loaded
    from / last saved to the same pair of files, and compacted back to a
    full rewrite once the accumulated delta ops exceed ``delta_compact`` ×
    base graph count.  ``mmap`` resolved off skips the sidecar entirely.
    """
    path_str = os.fspath(path)
    config = engine.config
    sidecar = sidecar_path_for(path_str, config, index_path)
    want_sidecar = _use_mmap(config, mmap)

    str_gids = all(isinstance(gid, str) for gid in engine.gids())
    net_ops = _plan_delta(engine, path_str, sidecar) if str_gids else None

    if net_ops is not None and not net_ops:
        # Nothing changed since the sync and the files still match the
        # handle: both writes would be byte-for-byte no-ops.
        return

    delta = None
    if want_sidecar and net_ops is not None:
        prev = engine._disk_source
        total = prev.delta_ops + len(net_ops)
        if total <= config.delta_compact * max(1, prev.base_graphs):
            delta = (prev, net_ops, total)

    # One policy + one stateful fault plan for the whole save, so a
    # times=N countdown spans every barrier the operation crosses.
    policy = resolve_fsync_policy(config.fsync_policy)
    plan = resolve_io_plan(config.fault_plan or None)

    # Text first (atomic), sidecar second: a crash in between leaves the
    # sidecar pointing at the old hash — stale, so load falls back.
    pairs = [(gid, engine.graph(gid)) for gid in engine.gids()]
    tmp = f"{path_str}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(_header_line(engine))
            gio.write_graphs(handle, pairs)
            # The temp file must be durable *before* the rename publishes
            # it — otherwise a power cut can expose a zero-length text.
            guarded_fsync(
                handle, stage="text.tmp", plan=plan, policy=policy, critical=True
            )
        source_sha = file_sha256(tmp)
        source_size = os.path.getsize(tmp)
        guarded_replace(tmp, path_str, stage="text.replace", plan=plan)
        fsync_dir(path_str, stage="text.dir", plan=plan, policy=policy)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)

    if not want_sidecar:
        engine._sync_disk_source(None)
        return

    if delta is not None:
        prev, ops, total = delta
        generation = prev.disk_generation + diskcat.replay_generation_bumps(ops)
        diskcat.append_delta(
            sidecar,
            ops,
            generation=generation,
            source_size=source_size,
            source_sha=source_sha,
            fsync_policy=policy,
            fault_plan=plan,
        )
        handle_after = DiskHandle(
            graph_path=os.path.abspath(path_str),
            index_path=os.path.abspath(sidecar),
            local_generation=engine.index.generation,
            disk_generation=generation,
            source_sha=source_sha.hex(),
            source_size=source_size,
            delta_count=prev.delta_count + 1,
            base_graphs=prev.base_graphs,
            delta_ops=total,
        )
    else:
        diskcat.write_sidecar(
            sidecar,
            pairs,
            config=dataclasses.asdict(config),
            generation=0,
            source_size=source_size,
            source_sha=source_sha,
            fsync_policy=policy,
            fault_plan=plan,
        )
        handle_after = DiskHandle(
            graph_path=os.path.abspath(path_str),
            index_path=os.path.abspath(sidecar),
            local_generation=engine.index.generation,
            disk_generation=0,
            source_sha=source_sha.hex(),
            source_size=source_size,
            delta_count=0,
            base_graphs=len(pairs),
            delta_ops=0,
        )
    engine._sync_disk_source(handle_after if str_gids else None)


def _plan_delta(
    engine: SegosIndex, path: str, sidecar: str
) -> Optional[List[Tuple[str, str, Optional[str]]]]:
    """The net per-graph ops since the last sync, or ``None`` for full save.

    ``None`` means "no usable delta baseline" (never synced, journal
    overflowed, different target files, or the on-disk pair was modified
    behind our back).  An empty list means "verified byte-identical on
    disk already" — the caller skips both writes.
    """
    prev = engine._disk_source
    if (
        prev is None
        or engine._journal_overflow
        or os.path.abspath(path) != prev.graph_path
        or os.path.abspath(sidecar) != prev.index_path
    ):
        return None
    # The sidecar on disk must still be the one the handle describes —
    # generation, segment count and source hash all agree — otherwise an
    # external writer got there first and appending would corrupt history.
    try:
        header = diskcat.read_header(sidecar)
    except (SidecarError, OSError):
        return None
    if (
        header.generation != prev.disk_generation
        or header.delta_count != prev.delta_count
        or header.source_sha != bytes.fromhex(prev.source_sha)
    ):
        return None

    first_op: dict = {}
    for op, gid in engine._persist_journal:
        first_op.setdefault(gid, op)
    ops: List[Tuple[str, str, Optional[str]]] = []
    for gid in sorted(first_op):
        was_present = first_op[gid] != "add"
        is_present = gid in engine
        if was_present and is_present:
            kind = "update"
        elif was_present:
            kind = "remove"
        elif is_present:
            kind = "add"
        else:
            continue  # added then removed: net no-op
        payload = (
            gio.dumps([(gid, engine.graph(gid))]) if kind != "remove" else None
        )
        ops.append((kind, gid, payload))

    if not ops:
        # Journal nets out to nothing; confirm the text really is the one
        # we synced against before declaring the save a no-op.
        try:
            if (
                os.path.getsize(path) != prev.source_size
                or file_sha256(path) != bytes.fromhex(prev.source_sha)
            ):
                return None
        except OSError:
            return None
    return ops
