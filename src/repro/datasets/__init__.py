"""Dataset harness: reproducible stand-ins for the paper's two corpora."""

from .corpora import (
    Dataset,
    aids_like,
    pdg_like,
    sample_queries,
)
from .stats import CorpusSummary, label_histogram, order_histogram, summarize

__all__ = [
    "CorpusSummary",
    "Dataset",
    "aids_like",
    "label_histogram",
    "order_histogram",
    "pdg_like",
    "sample_queries",
    "summarize",
]
