"""Tests for the verification scheduler."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import SegosIndex
from repro.core.verify import verify_candidates
from repro.datasets import aids_like, sample_queries
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import erdos_renyi
from repro.graphs.model import Graph


@pytest.fixture(scope="module")
def verify_setup():
    data = aids_like(25, seed=19, mean_order=7, stddev=2)
    engine = SegosIndex(data.graphs, k=10, h=30)
    return data, engine


class TestVerifyCandidates:
    def test_exact_partition(self, verify_setup):
        data, engine = verify_setup
        query = sample_queries(data, 1, seed=20, edits=1)[0]
        tau = 2
        result = engine.range_query(query, tau)
        report = verify_candidates(
            data.graphs,
            query,
            result.candidates,
            tau,
            already_confirmed=result.matches,
        )
        truth = {
            gid
            for gid, g in data.graphs.items()
            if graph_edit_distance(query, g, threshold=tau) is not None
        }
        assert report.decided()
        assert report.matches == truth
        assert report.rejected == set(result.candidates) - truth

    def test_confirmed_skip_astar(self, verify_setup):
        data, engine = verify_setup
        gid, graph = next(iter(data.graphs.items()))
        report = verify_candidates(
            data.graphs, graph.copy(), [gid], 0, already_confirmed=[gid]
        )
        assert report.astar_runs == 0
        assert gid in report.matches

    def test_bounds_settle_without_astar(self, verify_setup):
        data, _ = verify_setup
        gid, graph = next(iter(data.graphs.items()))
        # Self-query: U_m = 0 ≤ τ, settled by bounds.
        report = verify_candidates(data.graphs, graph.copy(), [gid], 0)
        assert report.settled_by_bounds == 1
        assert report.astar_runs == 0
        assert gid in report.matches

    def test_budget_exhaustion_is_undecided(self):
        rng = random.Random(2)
        q = erdos_renyi(rng, "ab", 9, 0.5)
        g = erdos_renyi(rng, "ab", 9, 0.5)
        report = verify_candidates({"g": g}, q, ["g"], 3, budget_per_candidate=2)
        assert report.undecided in ({"g"}, set())  # bounds may settle it
        assert report.decided() == (not report.undecided)

    def test_deadline_zero_defers_everything_scheduled(self, verify_setup):
        data, engine = verify_setup
        query = sample_queries(data, 1, seed=21)[0]
        result = engine.range_query(query, 5)
        report = verify_candidates(
            data.graphs, query, result.candidates, 5, deadline=0.0
        )
        # Whatever bounds could not settle is undecided, never silently
        # dropped.
        assert (
            len(report.matches)
            + len(report.rejected)
            + len(report.undecided)
            >= len(result.candidates)
        )
        assert report.astar_runs == 0

    def test_validation(self, verify_setup):
        data, _ = verify_setup
        with pytest.raises(ValueError):
            verify_candidates(data.graphs, Graph(["a"]), [], -1)

    def test_empty_candidates(self, verify_setup):
        data, _ = verify_setup
        report = verify_candidates(data.graphs, Graph(["C00"]), [], 1)
        assert report.decided()
        assert not report.matches
