"""Beyond the paper: similarity self-join throughput, indexed vs naive.

The join is |D| range queries against the index (with a shared TA cache)
versus the naive |D|²/2 Hungarian comparisons a C-Star-style join needs.
The bench reports total mapping-distance computations and wall clock for
both, on a corpus with planted clone pairs so the join is non-trivial.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench import Series, format_table
from repro.core.engine import SegosIndex
from repro.core.join import similarity_self_join
from repro.datasets import aids_like
from repro.graphs.generators import mutate
from repro.graphs.model import normalization_factor
from repro.matching.mapping import mapping_distance


def test_similarity_join(benchmark, grid, report):
    data = aids_like(120, seed=2012, mean_order=grid.mean_order)
    graphs = dict(data.graphs)
    rng = random.Random(99)
    for i, key in enumerate(list(graphs)[:10]):
        graphs[f"{key}-twin"] = mutate(rng, graphs[key], 1, data.labels)
    tau = 1

    engine = SegosIndex(graphs, k=grid.default_k, h=grid.default_h)
    started = time.perf_counter()
    joined = similarity_self_join(engine, tau=tau)
    indexed_time = time.perf_counter() - started
    indexed_accessed = joined.stats.graphs_accessed

    # Naive C-Star-style join: one Hungarian per unordered pair.
    keys = sorted(graphs, key=str)
    started = time.perf_counter()
    naive_pairs = []
    naive_accessed = 0
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            naive_accessed += 1
            mu = mapping_distance(graphs[a], graphs[b])
            if mu / normalization_factor(graphs[a], graphs[b]) <= tau:
                naive_pairs.append((a, b))
    naive_time = time.perf_counter() - started

    # Soundness: every naive-filter pair must appear among the join pairs.
    assert set(naive_pairs) <= set(joined.pairs)

    times = Series("time (s)")
    accessed = Series("mapping computations")
    pair_count = Series("pairs out")
    times.add("SEGOS join", indexed_time)
    times.add("naive C-Star join", naive_time)
    accessed.add("SEGOS join", indexed_accessed)
    accessed.add("naive C-Star join", naive_accessed)
    pair_count.add("SEGOS join", len(joined.pairs))
    pair_count.add("naive C-Star join", len(naive_pairs))
    report(
        "similarity_join",
        format_table(
            f"Similarity self-join ({len(graphs)} graphs, τ={tau})",
            "method",
            ["SEGOS join", "naive C-Star join"],
            [times, accessed, pair_count],
        ),
    )
    benchmark.pedantic(
        lambda: similarity_self_join(engine, tau=tau), rounds=1, iterations=1
    )
    assert indexed_accessed < naive_accessed
