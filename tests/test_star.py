"""Unit tests for star decomposition and the star edit distance (Lemma 1)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.graphs.model import Graph
from repro.graphs.star import (
    Star,
    decompose,
    decompose_map,
    epsilon_distance,
    max_epsilon_distance,
    multiset_intersection_size,
    sed_via_common_leaves,
    star_at,
    star_edit_distance,
)


class TestStar:
    def test_leaves_are_sorted(self):
        s = Star("a", ["c", "b", "b"])
        assert s.leaves == ("b", "b", "c")

    def test_signature(self):
        assert Star("a", ["c", "b"]).signature == "a|b,c"

    def test_signature_disambiguates_multichar_labels(self):
        assert Star("a", ["ab", "c"]).signature != Star("a", ["a", "bc"]).signature

    def test_leaf_size(self):
        assert Star("a", "bbcc").leaf_size == 4
        assert Star("a").leaf_size == 0

    def test_equality_and_hash(self):
        assert Star("a", ["b", "c"]) == Star("a", ["c", "b"])
        assert hash(Star("a", "bc")) == hash(Star("a", "cb"))
        assert Star("a", "b") != Star("b", "b")
        assert Star("a") != "a"

    def test_ordering_alphabetical(self):
        # The upper-level index sorts sub-units alphabetically (Figure 5).
        assert Star("a", "bb") < Star("b", "aa")
        assert Star("a", "bb") < Star("a", "bc")

    def test_leaf_counter(self):
        assert Star("a", "bbc").leaf_counter() == Counter({"b": 2, "c": 1})

    def test_repr(self):
        assert "a|b" in repr(Star("a", "b"))


class TestDecomposition:
    def test_star_count_equals_order(self, paper_g1):
        assert len(decompose(paper_g1)) == paper_g1.order

    def test_paper_g1_stars(self, paper_g1):
        # Figure 2: S(g1) = {abbcc, bab, babcc, cab, cab}.
        signatures = sorted(s.signature for s in decompose(paper_g1))
        assert signatures == [
            "a|b,b,c,c",
            "b|a,b",
            "b|a,b,c,c",
            "c|a,b",
            "c|a,b",
        ]

    def test_paper_g2_stars(self, paper_g2):
        signatures = sorted(s.signature for s in decompose(paper_g2))
        assert signatures == [
            "a|b,b,c,c,d",
            "b|a,b",
            "b|a,b,c,c,d",
            "c|a,b",
            "c|a,b",
            "d|a,b",
        ]

    def test_decompose_map_keys_are_vertices(self, paper_g1):
        mapping = decompose_map(paper_g1)
        assert set(mapping) == set(paper_g1.vertices())
        assert mapping[0] == star_at(paper_g1, 0)

    def test_isolated_vertex_star(self):
        g = Graph(["x"])
        assert decompose(g) == [Star("x")]


class TestMultisetIntersection:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ((), (), 0),
            (("a",), (), 0),
            (("a", "b"), ("a", "b"), 2),
            (("a", "a", "b"), ("a", "b", "b"), 2),
            (("a", "a"), ("a", "a", "a"), 2),
            (("a", "c"), ("b", "d"), 0),
        ],
    )
    def test_cases(self, left, right, expected):
        assert multiset_intersection_size(left, right) == expected


class TestStarEditDistance:
    def test_identical(self):
        s = Star("a", "bbcc")
        assert star_edit_distance(s, s) == 0

    def test_paper_worked_example(self):
        # Section III-A: λ(s0=abbcc, s1=abbccd) = 0 + |4-5| + 5 - 4 = 2.
        assert star_edit_distance(Star("a", "bbcc"), Star("a", "bbccd")) == 2

    def test_root_mismatch_costs_one(self):
        assert star_edit_distance(Star("a", "bb"), Star("c", "bb")) == 1

    def test_symmetry(self):
        s1, s2 = Star("a", "bcd"), Star("b", "bb")
        assert star_edit_distance(s1, s2) == star_edit_distance(s2, s1)

    def test_figure3_full_matrix_row(self):
        # Figure 3's right matrix, row s0 = abbcc against S(g2)'s stars.
        s0 = Star("a", "bbcc")
        columns = [
            (Star("a", "bbccd"), 2),
            (Star("b", "ab"), 6),
            (Star("b", "abccd"), 4),
            (Star("c", "ab"), 6),
            (Star("c", "ab"), 6),
            (Star("d", "ab"), 6),
        ]
        for star, expected in columns:
            assert star_edit_distance(s0, star) == expected

    def test_disjoint_leaves(self):
        # d(L1, L2) = ||L1|-|L2|| + max - 0.
        assert star_edit_distance(Star("a", "bb"), Star("a", "cc")) == 2

    def test_empty_leaf_sets(self):
        assert star_edit_distance(Star("a"), Star("a")) == 0
        assert star_edit_distance(Star("a"), Star("b")) == 1


class TestEquationOne:
    """Equation (1) must agree with Lemma 1 given the true ψ."""

    @pytest.mark.parametrize(
        "query,other",
        [
            (Star("a", "bbcc"), Star("a", "bbccd")),
            (Star("a", "bbcc"), Star("b", "ab")),
            (Star("x", ""), Star("x", "yy")),
            (Star("x", "yy"), Star("x", "")),
            (Star("a", "bcde"), Star("a", "bcde")),
        ],
    )
    def test_matches_lemma1(self, query, other):
        psi = multiset_intersection_size(query.leaves, other.leaves)
        assert sed_via_common_leaves(
            query, other.root, other.leaf_size, psi
        ) == star_edit_distance(query, other)


class TestEpsilonDistance:
    def test_figure3_epsilon_row(self):
        # ε vs abbccd = 11; ε vs bab = 5 (Figure 3, bottom row).
        assert epsilon_distance(Star("a", "bbccd")) == 11
        assert epsilon_distance(Star("b", "ab")) == 5

    def test_isolated_vertex(self):
        assert epsilon_distance(Star("a")) == 1

    def test_max_epsilon_distance(self, paper_g1, paper_g2):
        stars = decompose(paper_g1) + decompose(paper_g2)
        # Largest star is abbccd with 5 leaves: χ̄ = 11 (Section V-C example).
        assert max_epsilon_distance(stars) == 11

    def test_max_epsilon_distance_empty(self):
        assert max_epsilon_distance([]) == 0
