"""Smoke tests: every example script must run to completion.

Each example is executed in-process (imported as a module and ``main()``
called) with stdout captured; slow corpus sizes are tolerable because the
examples were sized to finish in seconds.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "dynamic_maintenance",
    "clone_detection",
    "knn_search",
    "query_explain",
]
SLOW_EXAMPLES = [
    "molecule_search",
    "subgraph_search",
    "similarity_join",
]


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        del sys.modules[spec.name]
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    out = run_example(name, capsys)
    assert out.strip(), name


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name, capsys):
    out = run_example(name, capsys)
    assert out.strip(), name


class TestExampleOutcomes:
    def test_quickstart_finds_both_matches(self, capsys):
        out = run_example("quickstart", capsys)
        assert "['g1', 'g2']" in out

    def test_clone_detection_recovers_all(self, capsys):
        out = run_example("clone_detection", capsys)
        assert "recovered 12/12 planted clones" in out

    def test_knn_search_recovers_source(self, capsys):
        out = run_example("knn_search", capsys)
        assert "<- source" in out
