"""Span tracing for the query pipeline.

A *span* is one timed operation (a query, a stage, an A* run, a worker
task); spans form a tree via parent links and share a ``trace_id``, so one
traced query can be followed from the engine front-end through the staged
executor, across threads (the pipelined scheduler) and across *processes*
(the supervised worker pool) back into a single picture.

Design constraints, in order:

* **Disabled is free.**  The executor always carries a tracer; when
  tracing is off it is :data:`NULL_TRACER`, whose ``span()`` returns one
  shared no-op context manager and whose ``enabled`` flag lets hot loops
  skip instrumentation entirely.  No query path ever branches on "is
  there a tracer" — only on ``tracer.enabled`` where the span itself
  would be too hot.
* **Cross-process stitching.**  A worker process cannot share the parent
  tracer object; it gets the parent's :class:`SpanContext` (two strings),
  builds its own :class:`Tracer` adopting that ``trace_id``/parent, and
  ships its finished spans home by pickle, where the parent tracer
  :meth:`~Tracer.adopt`\\ s them.
* **Thread safety.**  The pipelined engine runs TA/CA/DC in threads; span
  stacks are thread-local, the finished-span list is lock-protected, and
  threads without an ambient stack inherit the tracer's fallback parent
  or an explicit ``parent=``.

Timestamps are ``time.time()`` (epoch seconds): unlike ``perf_counter``,
they are comparable across processes, which is what lets worker spans
land on the parent's timeline in the Chrome trace viewer.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union


_IDS = itertools.count(1)


def _new_id() -> str:
    """Process-unique span/trace id: ``<pid hex>-<counter hex>``."""
    return f"{os.getpid():x}-{next(_IDS):x}"


@dataclass(frozen=True)
class SpanContext:
    """The picklable coordinates a child process needs to stitch in."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One finished (or in-flight) timed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str = ""  # "" marks a root span
    start: float = 0.0  # epoch seconds (cross-process comparable)
    end: float = 0.0
    pid: int = 0
    tid: int = 0
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0 for instant events)."""
        return max(self.end - self.start, 0.0)

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)


class _NullSpanCM:
    """The shared no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN_CM = _NullSpanCM()


class Tracer:
    """Collects the span tree of one trace; thread-safe, pickles nothing.

    ``parent_id`` seeds spans opened on threads (or in worker processes)
    that have no enclosing span of their own — it is how a worker-side
    tracer attaches its roots under the dispatching pool span.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None, parent_id: str = "") -> None:
        self.trace_id = trace_id if trace_id else _new_id()
        self.parent_id = parent_id
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._exported = 0

    # -- span stack (per thread) ----------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_context(self) -> Optional[SpanContext]:
        """The innermost open span on this thread (or the fallback parent)."""
        stack = self._stack()
        if stack:
            return SpanContext(self.trace_id, stack[-1])
        if self.parent_id:
            return SpanContext(self.trace_id, self.parent_id)
        return None

    def _resolve_parent(self, parent: Optional[SpanContext]) -> str:
        if parent is not None:
            return parent.span_id
        stack = self._stack()
        return stack[-1] if stack else self.parent_id

    # -- recording ------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, *, parent: Optional[SpanContext] = None, **attrs: Any
    ) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block.

        The parent is, in order: the explicit ``parent=`` context (how
        pipeline threads attach under their stage), the innermost open
        span on the calling thread, or the tracer's fallback parent.
        """
        sp = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=self._resolve_parent(parent),
            start=time.time(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        )
        stack = self._stack()
        stack.append(sp.span_id)
        try:
            yield sp
        except BaseException:
            sp.status = "error"
            raise
        finally:
            stack.pop()
            sp.end = time.time()
            with self._lock:
                self._spans.append(sp)

    def begin(
        self, name: str, *, parent: Optional[SpanContext] = None, **attrs: Any
    ) -> Span:
        """Open a span *without* entering it on the thread's span stack.

        For long-lived supervisors (the worker pool) whose children are
        attached by explicit ``parent=`` rather than ambient nesting.
        The span is recorded only when :meth:`end_span` is called.
        """
        return Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=self._resolve_parent(parent),
            start=time.time(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        )

    def end_span(self, span: Span, **attrs: Any) -> None:
        """Close and record a span opened with :meth:`begin`."""
        span.end = time.time()
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            self._spans.append(span)

    def event(
        self, name: str, *, parent: Optional[SpanContext] = None, **attrs: Any
    ) -> str:
        """Record an instant (zero-length) span and return its id.

        Degradation telemetry links through this: the returned id lands in
        :attr:`DegradationEvent.span_id` so a failure in the span tree and
        its event record point at each other.
        """
        now = time.time()
        sp = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=self._resolve_parent(parent),
            start=now,
            end=now,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        )
        with self._lock:
            self._spans.append(sp)
        return sp.span_id

    def adopt(self, spans: Sequence[Span]) -> None:
        """Merge finished spans shipped home from a worker process."""
        if spans:
            with self._lock:
                self._spans.extend(spans)

    # -- reading --------------------------------------------------------

    def snapshot(self) -> List[Span]:
        """A point-in-time copy of every finished span."""
        with self._lock:
            return list(self._spans)

    def drain_unexported(self) -> List[Span]:
        """Spans finished since the last drain (incremental file export)."""
        with self._lock:
            fresh = self._spans[self._exported :]
            self._exported = len(self._spans)
            return list(fresh)

    def to_trace(self) -> "Trace":
        """A live :class:`Trace` view over this tracer's spans."""
        return Trace(self, trace_id=self.trace_id)


class NullTracer:
    """The do-nothing tracer carried when tracing is off.

    Every method is a constant-time no-op; ``span()`` hands back one
    shared context manager, so the disabled path allocates nothing.
    Hot loops should still gate per-item spans on ``tracer.enabled``.
    """

    enabled = False
    trace_id = ""
    parent_id = ""

    def span(self, name: str, *, parent: Optional[SpanContext] = None, **attrs):
        return _NULL_SPAN_CM

    def event(
        self, name: str, *, parent: Optional[SpanContext] = None, **attrs: Any
    ) -> str:
        return ""

    def begin(
        self, name: str, *, parent: Optional[SpanContext] = None, **attrs: Any
    ) -> Optional[Span]:
        return None

    def end_span(self, span: Optional[Span], **attrs: Any) -> None:
        pass

    def adopt(self, spans: Sequence[Span]) -> None:
        pass

    def current_context(self) -> Optional[SpanContext]:
        return None

    def snapshot(self) -> List[Span]:
        return []

    def drain_unexported(self) -> List[Span]:
        return []

    def to_trace(self) -> "Trace":
        return Trace([], trace_id="")


#: The shared disabled tracer every untraced execution carries.
NULL_TRACER = NullTracer()


class Trace:
    """A queryable view over a trace's spans (live or materialised).

    Constructed either over a :class:`Tracer` (live: new spans keep
    appearing, which is how every result of a traced batch shares one
    growing trace) or over a plain span list (e.g. read back from a JSONL
    export).
    """

    def __init__(
        self, source: Union[Tracer, NullTracer, Sequence[Span]], trace_id: str = ""
    ) -> None:
        self._source = source
        self._trace_id = trace_id or getattr(source, "trace_id", "")

    def __reduce__(self):
        # A live Tracer holds a threading.Lock; pickling materialises the
        # view into a plain span list so results cross process boundaries.
        return (Trace, (self.spans, self._trace_id))

    @property
    def trace_id(self) -> str:
        return self._trace_id

    @property
    def spans(self) -> List[Span]:
        source = self._source
        if hasattr(source, "snapshot"):
            return source.snapshot()
        return list(source)

    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> List[Span]:
        """Every span called *name*, in completion order."""
        return [span for span in self.spans if span.name == name]

    def roots(self) -> List[Span]:
        """Spans whose parent is unknown to this trace, by start time."""
        spans = self.spans
        known = {span.span_id for span in spans}
        return sorted(
            (s for s in spans if not s.parent_id or s.parent_id not in known),
            key=lambda s: (s.start, s.span_id),
        )

    def children(self, span_id: str) -> List[Span]:
        """Direct children of one span, by start time."""
        return sorted(
            (s for s in self.spans if s.parent_id == span_id),
            key=lambda s: (s.start, s.span_id),
        )

    def processes(self) -> List[int]:
        """Distinct pids that contributed spans (≥2 proves stitching)."""
        return sorted({span.pid for span in self.spans})

    def render(self) -> str:
        """Indented tree, one line per span, for the CLI's ``--trace``."""
        lines: List[str] = []
        spans = self.spans
        by_parent: Dict[str, List[Span]] = {}
        known = {span.span_id for span in spans}
        for span in spans:
            key = span.parent_id if span.parent_id in known else ""
            by_parent.setdefault(key, []).append(span)
        for siblings in by_parent.values():
            siblings.sort(key=lambda s: (s.start, s.span_id))

        def walk(span: Span, depth: int) -> None:
            label = f"{'  ' * depth}{span.name}"
            detail = f"{span.duration * 1000:.2f}ms pid={span.pid}"
            if span.status != "ok":
                detail += f" status={span.status}"
            if span.attrs:
                rendered = " ".join(
                    f"{key}={value}" for key, value in sorted(span.attrs.items())
                )
                detail += f" [{rendered}]"
            lines.append(f"{label}  ({detail})")
            for child in by_parent.get(span.span_id, []):
                walk(child, depth + 1)

        for root in by_parent.get("", []):
            walk(root, 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Ambient tracer (contextvar): how `with trace_query():` reaches the executor
# and how worker-side code joins the task span opened around it.
# ---------------------------------------------------------------------------

_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar("repro_active_tracer", default=None)


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer installed by :func:`trace_query` (or a worker)."""
    return _ACTIVE.get()


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as the ambient tracer for the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def trace_query(name: str = "trace", **attrs: Any) -> Iterator[Tracer]:
    """Trace every query executed inside the block under one root span.

    Yields the :class:`Tracer`; read ``tracer.to_trace()`` (or the
    ``result.trace`` handle on each query result) afterwards, and export
    with :mod:`repro.obs.export`.

    Examples
    --------
    >>> from repro.obs import trace_query
    >>> with trace_query("demo") as tracer:
    ...     pass
    >>> [span.name for span in tracer.snapshot()]
    ['demo']
    """
    tracer = Tracer()
    token = _ACTIVE.set(tracer)
    try:
        with tracer.span(name, **attrs):
            yield tracer
    finally:
        _ACTIVE.reset(token)
