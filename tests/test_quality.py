"""Tests for the filter-quality measurement harness."""

from __future__ import annotations

import pytest

from repro.baselines import KappaAT, LinearScan
from repro.bench.quality import QualityReport, ground_truth, measure_quality
from repro.datasets import aids_like, sample_queries


@pytest.fixture(scope="module")
def quality_setup():
    data = aids_like(20, seed=44, mean_order=6, stddev=1)
    queries = sample_queries(data, 2, seed=45)
    return data, queries


class TestGroundTruth:
    def test_self_in_truth(self, quality_setup):
        data, queries = quality_setup
        truth = ground_truth(data.graphs, queries[0], 0)
        assert truth  # the query is a database member

    def test_monotone_in_tau(self, quality_setup):
        data, queries = quality_setup
        t0 = ground_truth(data.graphs, queries[0], 0)
        t2 = ground_truth(data.graphs, queries[0], 2)
        assert t0 <= t2


class TestMeasureQuality:
    def test_exact_filter_has_precision_one(self, quality_setup):
        data, queries = quality_setup
        report = measure_quality(LinearScan(data.graphs), data.graphs, queries, 2)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.avg_candidates == report.avg_truth

    def test_loose_filter_has_lower_precision(self, quality_setup):
        data, queries = quality_setup
        loose = measure_quality(
            KappaAT(data.graphs, kappa=2), data.graphs, queries, 2
        )
        assert loose.recall == 1.0
        assert loose.precision <= 1.0
        assert loose.avg_candidates >= loose.avg_truth

    def test_precomputed_truths(self, quality_setup):
        data, queries = quality_setup
        truths = [ground_truth(data.graphs, q, 1) for q in queries]
        a = measure_quality(
            LinearScan(data.graphs), data.graphs, queries, 1, truths=truths
        )
        b = measure_quality(LinearScan(data.graphs), data.graphs, queries, 1)
        assert a == b

    def test_validation(self, quality_setup):
        data, queries = quality_setup
        with pytest.raises(ValueError):
            measure_quality(LinearScan(data.graphs), data.graphs, [], 1)
        with pytest.raises(ValueError):
            measure_quality(
                LinearScan(data.graphs), data.graphs, queries, 1, truths=[set()]
            )

    def test_report_is_frozen_dataclass(self):
        report = QualityReport("x", 1.0, 1.0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            report.precision = 0.5  # type: ignore[misc]
