"""Degradation telemetry: the record that makes silent fallback loud.

Every time a parallel path loses a worker, retries a task, or falls back
to serial execution, the supervisor appends a :class:`DegradationEvent` to
the owning query's :attr:`~repro.core.stats.QueryStats.degradations`.
``explain`` and the CLI surface them, so "the pool broke and we quietly
re-ran everything" — previously invisible — shows up in every report.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DegradationEvent:
    """One degradation: what failed, what was kept, and what happened next.

    Attributes
    ----------
    point:
        The injection point that fired, or the classification of a real
        failure (``pool.broken``, ``worker.timeout``, ``task.error``,
        ``deadline``).
    stage:
        Which pool stage degraded (``batch`` or ``verify``).
    cause:
        Human-readable cause — the repr of the underlying exception, or
        the injected-fault marker.
    injected:
        True when a scripted fault plan (not a real failure) fired.
    retries:
        Which retry round this failure triggered (1 = first retry).
        0 means the failure was terminal — no retry followed.
    salvaged:
        Completed task results kept at failure time (per-chunk salvage:
        these are *not* recomputed).
    requeued:
        Unfinished tasks re-dispatched to the (re-spawned) pool.
    lost:
        Tasks the supervised pool abandoned — nonzero only on terminal
        events (circuit breaker open, blown deadline); the caller's
        fallback may still recover them serially.
    fallback:
        The recovery taken: ``retry`` (same pool), ``respawn`` (new
        pool), ``serial`` (caller falls back to in-process execution),
        ``abandon`` (deadline blown; leftovers reported undecided).
    span_id:
        When the run was traced, the id of the instant span recorded for
        this event — the link that lets a span tree and its degradation
        telemetry point at each other.  Empty when tracing was off.
    """

    point: str
    stage: str = ""
    cause: str = ""
    injected: bool = False
    retries: int = 0
    salvaged: int = 0
    requeued: int = 0
    lost: int = 0
    fallback: str = ""
    span_id: str = ""

    def summary(self) -> str:
        """One-line account, e.g. ``worker.crash[batch] injected: retry #1,
        salvaged 2, requeued 1 -> respawn``."""
        origin = "injected" if self.injected else self.cause or "failure"
        parts = [f"{self.point}[{self.stage or '-'}] {origin}"]
        if self.retries:
            parts.append(f"retry #{self.retries}")
        parts.append(f"salvaged {self.salvaged}")
        if self.requeued:
            parts.append(f"requeued {self.requeued}")
        if self.lost:
            parts.append(f"lost {self.lost}")
        return f"{parts[0]}: " + ", ".join(parts[1:]) + f" -> {self.fallback or 'none'}"
