"""Every ablated bound-chain variant must stay sound (no false negatives)."""

from __future__ import annotations

import random

import pytest

from repro.core.ca_search import ca_range_query
from repro.core.graph_lists import build_all_lists
from repro.core.index import TwoLevelIndex
from repro.core.stats import QueryStats
from repro.graphs.edit_distance import graph_edit_distance
from repro.graphs.generators import corpus, make_label_alphabet, mutate
from repro.graphs.star import decompose

VARIANTS = [
    frozenset(),
    frozenset({"zeta"}),
    frozenset({"l_mu"}),
    frozenset({"u_mu"}),
    frozenset({"partial_mu"}),
    frozenset({"zeta", "l_mu", "u_mu", "partial_mu"}),
]


@pytest.fixture(scope="module")
def ablation_setup():
    rng = random.Random(505)
    graphs = {
        f"g{i}": g
        for i, g in enumerate(
            corpus(rng, 20, kind="chemical", mean_order=6, stddev=1)
        )
    }
    index = TwoLevelIndex()
    for gid, g in graphs.items():
        index.add_graph(gid, g, decompose(g))
    labels = make_label_alphabet(63, prefix="C")
    query = mutate(rng, rng.choice(list(graphs.values())), 1, labels)
    tau = 2
    truth = {
        gid
        for gid, g in graphs.items()
        if graph_edit_distance(query, g, threshold=tau) is not None
    }
    return graphs, index, query, tau, truth


@pytest.mark.parametrize("disabled", VARIANTS, ids=lambda v: "+".join(sorted(v)) or "none")
def test_ablated_chain_is_sound(ablation_setup, disabled):
    graphs, index, query, tau, truth = ablation_setup
    lists = build_all_lists(index, decompose(query), query.order, 8)
    result = ca_range_query(
        index,
        graphs,
        query,
        tau,
        lists,
        h=10,
        stats=QueryStats(),
        disabled_bounds=disabled,
    )
    assert truth <= set(result.candidates), disabled
    assert result.confirmed <= truth, disabled
