"""Mapping distance µ and its GED bounds (Section III, C-Star machinery).

Definition 1: ``µ(g1, g2)`` is the minimum-cost bijection between the star
multisets ``S(g1)`` and ``S(g2)`` under the star edit distance, with ε stars
padding the smaller side.  Zeng et al. [9] showed

* Lemma 2 — ``L_m(g1, g2) = µ / max{4, max{δ(g1), δ(g2)} + 1} ≤ λ(g1, g2)``;
* Lemma 3 — the vertex mapping induced by the optimal star alignment gives
  an edit script whose cost ``U_m = C(g1, g2, P) ≥ λ(g1, g2)``.

This module also implements the paper's own contribution on this layer,
Theorem 1: the **partial mapping distance** ``µ(S(g1), S'(g2)) ≤ µ(g1, g2)``
computed over only the sub-units of ``g2`` seen so far, with unseen columns
at cost 0, maintained incrementally by the dynamic Hungarian solver
(:class:`DynamicMappingDistance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.model import Graph, normalization_factor
from ..graphs.star import Star, decompose_map, epsilon_distance
from ..perf.assignment import solve_assignment
from ..perf.sed_cache import cached_star_edit_distance
from .hungarian import HungarianSolver


def star_cost_matrix(stars1: Sequence[Star], stars2: Sequence[Star]) -> List[List[float]]:
    """Square SED cost matrix with ε padding (Figure 3, right matrix).

    Rows follow ``stars1``, columns ``stars2``; whichever side is smaller is
    padded with ε entries costing ``λ(s, ε) = 1 + 2·|L|`` against real stars
    and 0 against each other.  Real-vs-real cells go through the global SED
    memo cache: identical signature pairs recur massively across a database,
    so most cells are lookups rather than Lemma 1 recomputations.
    """
    n1, n2 = len(stars1), len(stars2)
    size = max(n1, n2)
    matrix: List[List[float]] = []
    for i in range(size):
        row: List[float] = []
        for j in range(size):
            if i < n1 and j < n2:
                row.append(float(cached_star_edit_distance(stars1[i], stars2[j])))
            elif i < n1:  # real star vs ε column
                row.append(float(epsilon_distance(stars1[i])))
            elif j < n2:  # ε row vs real star
                row.append(float(epsilon_distance(stars2[j])))
            else:  # ε vs ε
                row.append(0.0)
        matrix.append(row)
    return matrix


@dataclass(frozen=True)
class MappingResult:
    """Outcome of a full mapping-distance computation between two graphs.

    Attributes
    ----------
    distance:
        ``µ(g1, g2)`` (an integer-valued float).
    vertex_mapping:
        ``vertex of g1 → vertex of g2`` induced by the optimal star
        alignment; vertices aligned to ε are absent from the dict.
    inserted:
        vertices of ``g2`` not in the image of the mapping (matched to ε).
    """

    distance: float
    vertex_mapping: Dict[int, Optional[int]]
    inserted: Tuple[int, ...]


def mapping_distance(g1: Graph, g2: Graph, *, backend: Optional[str] = None) -> float:
    """``µ(g1, g2)`` — Definition 1 (Figure 2's worked example returns 9)."""
    return mapping_result(g1, g2, backend=backend).distance


def mapping_result(
    g1: Graph, g2: Graph, *, backend: Optional[str] = None
) -> MappingResult:
    """Compute µ plus the induced vertex mapping (for the Lemma 3 bound).

    ``backend`` selects the assignment solver (see
    :mod:`repro.perf.assignment`); all backends return the same µ.
    """
    stars1 = decompose_map(g1)
    stars2 = decompose_map(g2)
    ids1 = list(stars1)
    ids2 = list(stars2)
    matrix = star_cost_matrix([stars1[v] for v in ids1], [stars2[v] for v in ids2])
    total, assignment = solve_assignment(matrix, backend)
    vertex_mapping: Dict[int, Optional[int]] = {}
    used2 = set()
    for row, col in enumerate(assignment):
        if row < len(ids1):
            target = ids2[col] if col < len(ids2) else None
            vertex_mapping[ids1[row]] = target
            if target is not None:
                used2.add(target)
    inserted = tuple(v for v in ids2 if v not in used2)
    return MappingResult(total, vertex_mapping, inserted)


def edit_cost_under_mapping(
    g1: Graph, g2: Graph, vertex_mapping: Dict[int, Optional[int]]
) -> int:
    """``C(g1, g2, P)``: cost of the edit script induced by a vertex mapping.

    This is the Lemma 3 upper bound on GED: relabel mapped vertices whose
    labels differ, delete vertices mapped to ε, insert unmatched ``g2``
    vertices, and fix up every edge not preserved by the mapping.
    """
    cost = 0
    image = {}
    for v1, v2 in vertex_mapping.items():
        if v2 is None:
            cost += 1  # vertex deletion
        else:
            image[v1] = v2
            if g1.label(v1) != g2.label(v2):
                cost += 1  # relabel
    mapped_targets = set(image.values())
    cost += sum(1 for v in g2.vertices() if v not in mapped_targets)  # insertions

    preserved = 0
    for u, v in g1.edges():
        iu, iv = image.get(u), image.get(v)
        if iu is not None and iv is not None and g2.has_edge(iu, iv):
            preserved += 1
    cost += (g1.size - preserved) + (g2.size - preserved)
    return cost


def lower_bound(
    g1: Graph, g2: Graph, mu: Optional[float] = None, *, backend: Optional[str] = None
) -> float:
    """Lemma 2: ``L_m(g1, g2) = µ / max{4, max{δ(g1), δ(g2)} + 1}``."""
    if mu is None:
        mu = mapping_distance(g1, g2, backend=backend)
    return mu / normalization_factor(g1, g2)


def upper_bound(
    g1: Graph,
    g2: Graph,
    result: Optional[MappingResult] = None,
    *,
    backend: Optional[str] = None,
) -> int:
    """Lemma 3: edit cost of the Hungarian-induced mapping, ``U_m ≥ λ``."""
    if result is None:
        result = mapping_result(g1, g2, backend=backend)
    return edit_cost_under_mapping(g1, g2, result.vertex_mapping)


def bounds(
    g1: Graph, g2: Graph, *, backend: Optional[str] = None
) -> Tuple[float, int, float]:
    """Return ``(L_m, U_m, µ)`` from a single assignment solve."""
    result = mapping_result(g1, g2, backend=backend)
    return (
        result.distance / normalization_factor(g1, g2),
        edit_cost_under_mapping(g1, g2, result.vertex_mapping),
        result.distance,
    )


def partial_mapping_distance(
    query_stars: Sequence[Star],
    seen_stars: Sequence[Star],
    total_other: int,
    *,
    backend: Optional[str] = None,
) -> float:
    """One-shot Theorem 1 value ``µ(S(g1), S'(g2))``.

    ``total_other`` is ``|S(g2)|`` (how many stars ``g2`` has in total); it
    determines the square matrix size.  Unseen/ε columns cost 0 against
    every row, hence the result can only grow as more stars are revealed and
    is always ≤ the full ``µ(g1, g2)``.

    Unlike :class:`DynamicMappingDistance` (which pays one augmentation per
    revealed column to stay incremental), this builds the whole partial
    matrix up front and hands it to :func:`repro.perf.assignment.
    solve_assignment` in one go — the right shape when all the revealed
    stars are already known.
    """
    if total_other < 0:
        raise ValueError("other_order must be non-negative")
    if len(seen_stars) > total_other:
        raise ValueError(
            f"{len(seen_stars)} stars revealed but the data graph only has "
            f"{total_other}"
        )
    rows = list(query_stars)
    size = max(len(rows), total_other)
    if size == 0:
        raise ValueError("cannot compare two empty graphs")
    matrix: List[List[float]] = []
    for i in range(size):
        row: List[float] = []
        for j in range(size):
            if j >= len(seen_stars):  # unseen column: sound floor of 0
                row.append(0.0)
            elif i < len(rows):
                row.append(float(cached_star_edit_distance(rows[i], seen_stars[j])))
            else:  # ε row vs revealed star
                row.append(float(epsilon_distance(seen_stars[j])))
        matrix.append(row)
    total, _ = solve_assignment(matrix, backend)
    return total


class DynamicMappingDistance:
    """Incrementally maintained partial mapping distance (Theorem 1 / DC stage).

    Rows are the query's stars (plus ε rows when the data graph is larger);
    columns start as all-unseen at cost 0.  Each :meth:`reveal` fills in one
    column with true SEDs via the dynamic Hungarian column update, after
    which :meth:`current` is the (monotonically non-decreasing) partial
    distance.  :meth:`finalize` prices the remaining columns — unseen real
    stars are *not* allowed then; only permanent ε columns remain — and
    returns the exact ``µ`` plus the induced star alignment.

    The CA/DC stages use this to prune a graph the moment its partial
    distance exceeds ``τ·δ``, without ever paying for the full matrix.
    """

    def __init__(self, query_stars: Sequence[Star], other_order: int) -> None:
        if other_order < 0:
            raise ValueError("other_order must be non-negative")
        self.query_stars: List[Star] = list(query_stars)
        self.other_order = other_order
        self.size = max(len(self.query_stars), other_order)
        if self.size == 0:
            raise ValueError("cannot compare two empty graphs")
        self._revealed: List[Optional[Star]] = []
        self._finalized = False
        # Row i < len(query_stars): real star; beyond: ε row.
        zero = [[0.0] * self.size for _ in range(self.size)]
        self._solver = HungarianSolver(zero)
        self._solver.solve()

    @property
    def revealed_count(self) -> int:
        """How many of the data graph's stars have been revealed."""
        return len(self._revealed)

    @property
    def revealed_fraction(self) -> float:
        """Share of the data graph's stars revealed (0 for empty graphs)."""
        if self.other_order == 0:
            return 1.0
        return len(self._revealed) / self.other_order

    def _column_costs(self, star: Optional[Star]) -> List[float]:
        """Cost column for a revealed star (or a permanent ε when None)."""
        costs: List[float] = []
        for i in range(self.size):
            if i < len(self.query_stars):
                if star is None:
                    costs.append(float(epsilon_distance(self.query_stars[i])))
                else:
                    costs.append(
                        float(cached_star_edit_distance(self.query_stars[i], star))
                    )
            else:  # ε row
                costs.append(0.0 if star is None else float(epsilon_distance(star)))
        return costs

    def reveal(self, star: Star) -> float:
        """Reveal one more star of the data graph; return the new partial µ."""
        if self._finalized:
            raise RuntimeError("cannot reveal stars after finalize()")
        if len(self._revealed) >= self.other_order:
            raise RuntimeError(
                f"all {self.other_order} stars of the data graph already revealed"
            )
        col = len(self._revealed)
        self._revealed.append(star)
        self._solver.update_column(col, self._column_costs(star))
        return self._solver.cost()

    def current(self) -> float:
        """Current partial mapping distance ``µ(S(q), S'(g))``."""
        return self._solver.cost()

    def finalize(self) -> float:
        """Price the permanent ε columns and return the exact ``µ``.

        Requires every real star to have been revealed first; raises
        otherwise, because silently finalizing early would understate µ.
        """
        if len(self._revealed) != self.other_order:
            raise RuntimeError(
                f"only {len(self._revealed)}/{self.other_order} stars revealed; "
                "reveal the rest before finalize()"
            )
        if not self._finalized:
            for col in range(self.other_order, self.size):
                self._solver.update_column(col, self._column_costs(None))
            self._finalized = True
        return self._solver.cost()

    def star_alignment(self) -> List[Tuple[Optional[Star], Optional[Star]]]:
        """Current optimal alignment as (query star | ε, data star | ε) pairs."""
        pairs: List[Tuple[Optional[Star], Optional[Star]]] = []
        for row, col in enumerate(self._solver.assignment()):
            left = self.query_stars[row] if row < len(self.query_stars) else None
            right = self._revealed[col] if col < len(self._revealed) else None
            pairs.append((left, right))
        return pairs
