"""repro.obs — observability: span tracing, metrics, exporters.

The three pieces and how they meet the engine:

* :mod:`repro.obs.trace` — :func:`trace_query` / :class:`Tracer` /
  :data:`NULL_TRACER`; the plan executor carries a tracer on every
  execution and emits the span tree (engine → stage → A* runs → worker
  tasks, stitched across processes by the supervised pool);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` /
  :data:`GLOBAL_METRICS`, fed from finished :class:`QueryStats` so
  traced and untraced runs report identical numbers;
* :mod:`repro.obs.export` — JSONL span dumps (``trace_path`` knob),
  Chrome ``trace_event`` files and Prometheus text snapshots.

Switched by the ``trace`` / ``trace_path`` / ``metrics`` knobs on
:class:`repro.EngineConfig` (env ``REPRO_TRACE`` / ``REPRO_TRACE_PATH``
/ ``REPRO_METRICS``), per-call ``trace=True`` on the query front-ends,
or ambiently with ``with trace_query() as tracer: ...``.
"""

from .export import (
    chrome_trace_events,
    prometheus_text,
    read_spans_jsonl,
    span_from_dict,
    span_to_dict,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    GLOBAL_METRICS,
    record_query_metrics,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Trace,
    Tracer,
    activate,
    current_tracer,
    trace_query,
)

__all__ = [
    "Counter",
    "Gauge",
    "GLOBAL_METRICS",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanContext",
    "Trace",
    "Tracer",
    "activate",
    "chrome_trace_events",
    "current_tracer",
    "prometheus_text",
    "read_spans_jsonl",
    "record_query_metrics",
    "span_from_dict",
    "span_to_dict",
    "trace_query",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]
