"""Tests for exact subgraph edit distance (the sub-matching extension)."""

from __future__ import annotations

import random
from itertools import combinations, permutations

import pytest

from repro.errors import SearchBudgetExceeded
from repro.graphs.generators import erdos_renyi
from repro.graphs.model import Graph
from repro.graphs.subgraph_distance import (
    is_subgraph_isomorphic,
    subgraph_edit_distance,
    subgraph_label_lower_bound,
    subgraph_within,
)


def brute_force_sub_ged(query: Graph, target: Graph) -> int:
    """Reference: enumerate every injective partial mapping."""
    q_vertices = list(query.vertices())
    g_vertices = list(target.vertices())
    n = len(q_vertices)
    best = None
    for kept in range(n + 1):
        for subset in combinations(range(n), kept):
            for image in permutations(g_vertices, kept):
                mapping = dict(zip((q_vertices[i] for i in subset), image))
                cost = n - kept  # deleted query vertices
                for v, w in mapping.items():
                    if query.label(v) != target.label(w):
                        cost += 1
                for u, v in query.edges():
                    if u in mapping and v in mapping:
                        if not target.has_edge(mapping[u], mapping[v]):
                            cost += 1
                    else:
                        cost += 1
                if best is None or cost < best:
                    best = cost
    return best


class TestKnownValues:
    def test_subgraph_iso_is_zero(self):
        path = Graph(["a", "b"], [(0, 1)])
        triangle = Graph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)])
        assert subgraph_edit_distance(path, triangle) == 0
        assert is_subgraph_isomorphic(path, triangle)

    def test_asymmetry(self):
        path = Graph(["a", "b"], [(0, 1)])
        triangle = Graph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)])
        # Shrinking the triangle to a path costs: delete c + its two edges.
        assert subgraph_edit_distance(triangle, path) == 3
        assert not is_subgraph_isomorphic(triangle, path)

    def test_label_mismatch(self):
        q = Graph(["a"])
        g = Graph(["b", "c"], [(0, 1)])
        assert subgraph_edit_distance(q, g) == 1

    def test_missing_edge_in_target(self):
        q = Graph(["a", "b"], [(0, 1)])
        g = Graph(["a", "b"])
        assert subgraph_edit_distance(q, g) == 1  # delete the query edge

    def test_empty_query(self):
        g = Graph(["a", "b"], [(0, 1)])
        assert subgraph_edit_distance(Graph(), g) == 0

    def test_self_is_zero(self, paper_g1):
        assert subgraph_edit_distance(paper_g1, paper_g1) == 0

    def test_paper_g1_inside_g2(self, paper_g1, paper_g2):
        # g1 is a subgraph of g2 (drop the 'd' vertex and its edges).
        assert subgraph_edit_distance(paper_g1, paper_g2) == 0
        # g2 into g1: delete d (1) + its 2 edges.
        assert subgraph_edit_distance(paper_g2, paper_g1) == 3


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_pairs(self, seed):
        rng = random.Random(seed)
        q = erdos_renyi(rng, "ab", rng.randint(1, 4), 0.5)
        g = erdos_renyi(rng, "ab", rng.randint(1, 4), 0.5)
        assert subgraph_edit_distance(q, g) == brute_force_sub_ged(q, g)


class TestThresholdAndBudget:
    def test_threshold_cuts(self):
        q = Graph(["a", "b", "c"], [(0, 1), (1, 2)])
        g = Graph(["x"])
        assert subgraph_edit_distance(q, g, threshold=2) is None
        assert subgraph_within(q, g, 20)

    def test_within_matches_exact(self, rng):
        for _ in range(8):
            q = erdos_renyi(rng, "abc", rng.randint(1, 4), 0.4)
            g = erdos_renyi(rng, "abc", rng.randint(1, 4), 0.4)
            exact = subgraph_edit_distance(q, g)
            for tau in range(0, exact + 2):
                assert subgraph_within(q, g, tau) == (exact <= tau)

    def test_budget_exceeded(self):
        rng = random.Random(1)
        q = erdos_renyi(rng, "ab", 8, 0.5)
        g = erdos_renyi(rng, "ab", 9, 0.5)
        with pytest.raises(SearchBudgetExceeded):
            subgraph_edit_distance(q, g, budget=2)


class TestCheapBound:
    def test_lower_bound_is_lower(self, rng):
        for _ in range(10):
            q = erdos_renyi(rng, "abc", rng.randint(1, 4), 0.4)
            g = erdos_renyi(rng, "abc", rng.randint(1, 4), 0.4)
            assert subgraph_label_lower_bound(q, g) <= subgraph_edit_distance(q, g)

    def test_bound_zero_on_contained(self):
        path = Graph(["a", "b"], [(0, 1)])
        triangle = Graph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)])
        assert subgraph_label_lower_bound(path, triangle) == 0
