#!/usr/bin/env python
"""Perf-kernel benchmark: SED memoization, assignment backends, batch parallelism.

Unlike the figure-reproduction benches (which are pytest files), this is a
standalone script so CI can smoke-test the perf layer without the test
harness::

    PYTHONPATH=src python benchmarks/bench_perf_kernels.py [--smoke]

It measures the three accelerators of :mod:`repro.perf` on the bundled
synthetic corpus and writes a machine-readable ``BENCH_perf_kernels.json``
at the repository root, so the perf trajectory is trackable across PRs:

1. **SED memoization** — a repeated-query workload, counting actual
   Lemma 1 evaluations with the cache on vs off (a cache miss is exactly
   one evaluation; a request under the uncached path would be one too);
2. **assignment backends** — ``pure`` vs ``scipy`` wall-time on real star
   cost matrices, asserting bit-identical totals;
3. **batch parallelism** — serial vs process-parallel
   ``batch_range_query`` wall-time (honest numbers: on a single-core
   container the parallel path cannot win, so ``cpu_count`` is recorded
   alongside the speedup).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import SegosIndex  # noqa: E402
from repro.core.stats import QueryStats  # noqa: E402
from repro.datasets import aids_like, sample_queries  # noqa: E402
from repro.graphs.generators import mutate  # noqa: E402
from repro.matching.mapping import star_cost_matrix  # noqa: E402
from repro.graphs.star import decompose  # noqa: E402
from repro.perf.assignment import scipy_available, solve_assignment  # noqa: E402
from repro.perf.sed_cache import DEFAULT_CAPACITY, GLOBAL_SED_CACHE  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf_kernels.json"


def _build_workload(smoke: bool, seed: int):
    """Synthetic corpus + a repeated-query workload with shared vocabulary."""
    import random

    db_size = 40 if smoke else 120
    base_queries = 3 if smoke else 6
    verbatim = 2 if smoke else 8  # times each base query recurs unchanged
    mutants = 1 if smoke else 2  # near-duplicate variants per base query
    data = aids_like(db_size, seed=seed, mean_order=8, stddev=2)
    engine = SegosIndex(data.graphs, k=15, h=50)
    rng = random.Random(seed + 1)
    sources = sample_queries(data, base_queries, seed=seed + 2)
    # Each source recurs verbatim (a dashboard refreshing the same query)
    # and as light mutations (near-duplicate queries that still share most
    # star signatures with the original).
    workload = []
    for source in sources:
        workload.extend(source.copy() for _ in range(verbatim))
        for _ in range(mutants):
            workload.append(mutate(rng, source, 1, data.labels))
    rng.shuffle(workload)
    return data, engine, workload


def bench_sed_memoization(engine, workload, tau: float, repeats: int) -> dict:
    """Cached vs uncached SED over the repeated-query workload."""
    # Uncached: capacity 0 turns the cache into a pass-through, so every
    # lookup is one star_edit_distance invocation.
    time_uncached = None
    for _ in range(repeats):
        GLOBAL_SED_CACHE.clear()
        GLOBAL_SED_CACHE.resize(0)
        started = time.perf_counter()
        uncached_results = [engine.range_query(q, tau=tau) for q in workload]
        elapsed = time.perf_counter() - started
        time_uncached = elapsed if time_uncached is None else min(time_uncached, elapsed)

    # Cached: a miss is one invocation, a hit is zero; hits + misses equals
    # the invocation count the uncached path just paid (same call sites).
    # Each repeat starts from a cleared cache, so the counters are
    # deterministic per pass.
    time_cached = None
    for _ in range(repeats):
        GLOBAL_SED_CACHE.resize(DEFAULT_CAPACITY)
        GLOBAL_SED_CACHE.clear()
        started = time.perf_counter()
        cached_results = [engine.range_query(q, tau=tau) for q in workload]
        elapsed = time.perf_counter() - started
        time_cached = elapsed if time_cached is None else min(time_cached, elapsed)
    info = GLOBAL_SED_CACHE.info()

    for a, b in zip(uncached_results, cached_results):
        assert set(a.candidates) == set(b.candidates), "cache changed answers"
    merged = QueryStats.merged(r.stats for r in cached_results)
    return {
        "queries": len(workload),
        "sed_requests": info.requests,
        "invocations_uncached": info.requests,
        "invocations_cached": info.misses,
        "invocation_reduction": (
            info.requests / info.misses if info.misses else float("inf")
        ),
        "hit_rate": info.hit_rate,
        "per_query_hit_rate": merged.sed_cache_hit_rate,
        "time_uncached_s": time_uncached,
        "time_cached_s": time_cached,
        "time_speedup": time_uncached / time_cached if time_cached else None,
    }


def bench_assignment_backends(data, smoke: bool, seed: int) -> dict:
    """pure vs scipy on the star cost matrices of real graph pairs."""
    import random

    rng = random.Random(seed + 3)
    gids = list(data.graphs)
    pairs = 40 if smoke else 150
    matrices = []
    for _ in range(pairs):
        g1 = data.graphs[rng.choice(gids)]
        g2 = data.graphs[rng.choice(gids)]
        matrices.append(star_cost_matrix(decompose(g1), decompose(g2)))

    timings = {}
    totals = {}
    for backend in ("pure", "scipy"):
        started = time.perf_counter()
        totals[backend] = [solve_assignment(m, backend)[0] for m in matrices]
        timings[backend] = time.perf_counter() - started
    agree = totals["pure"] == totals["scipy"]
    assert agree, "assignment backends disagreed on mapping distances"
    return {
        "matrices": len(matrices),
        "mean_matrix_size": sum(len(m) for m in matrices) / len(matrices),
        "time_pure_s": timings["pure"],
        "time_scipy_s": timings["scipy"],
        "scipy_native": scipy_available(),
        "speedup_scipy_over_pure": (
            timings["pure"] / timings["scipy"] if timings["scipy"] else None
        ),
        "totals_identical": agree,
    }


def bench_batch_parallel(
    engine, workload, tau: float, workers: int, repeats: int
) -> dict:
    """Serial vs process-parallel batch_range_query, equal (cold) footing.

    Best-of-*repeats* per mode: min wall time is the least-noisy estimator
    on a shared box, and it is applied to both sides symmetrically.
    """

    def timed(n_workers: int):
        best, results = None, None
        for _ in range(repeats):
            GLOBAL_SED_CACHE.clear()
            started = time.perf_counter()
            results = engine.batch_range_query(workload, tau=tau, workers=n_workers)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, results

    time_serial, serial = timed(1)
    time_parallel, parallel = timed(workers)
    for a, b in zip(serial, parallel):
        assert set(a.candidates) == set(b.candidates), "parallel changed answers"
    speedup = time_serial / time_parallel if time_parallel else None
    return {
        "queries": len(workload),
        "workers": workers,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "time_serial_s": time_serial,
        "time_parallel_s": time_parallel,
        "speedup": speedup,
        "parallel_beats_serial": bool(speedup and speedup > 1.0),
    }


def main(argv=None) -> int:
    # allow_abbrev off: a typo'd --flag silently matching --smoke (or not)
    # flips which BENCH json gets overwritten.
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes, CI import/sanity check"
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument("--tau", type=float, default=2.0)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON report path"
    )
    args = parser.parse_args(argv)

    data, engine, workload = _build_workload(args.smoke, args.seed)
    report = {
        "meta": {
            "bench": "perf_kernels",
            "smoke": args.smoke,
            "seed": args.seed,
            "tau": args.tau,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "db_size": len(engine),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "sed_memoization": bench_sed_memoization(
            engine, workload, args.tau, max(1, args.repeats)
        ),
        "assignment_backends": bench_assignment_backends(data, args.smoke, args.seed),
        "batch_parallel": bench_batch_parallel(
            engine, workload, args.tau, args.workers, max(1, args.repeats)
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
