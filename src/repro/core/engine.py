"""The SEGOS engine: public facade over index, TA, CA and DC stages.

:class:`SegosIndex` is the class downstream users interact with: build it
over a graph database, mutate graphs in place through the seven update kinds
of Section IV-C, and ask GED range queries.

Range-query semantics mirror the paper's filter-and-verify contract:

* ``range_query(q, tau)`` returns a :class:`QueryResult` whose
  ``candidates`` are guaranteed to be a superset of the true answer set
  ``{g : λ(q, g) ≤ τ}`` and whose ``matches`` are the candidates already
  *confirmed* by an upper bound (no exact GED needed);
* ``verify="exact"`` additionally runs the A* GED over the unconfirmed
  candidates so ``matches`` becomes the exact answer set — practical only
  for small graphs, exactly as in the paper, where verification cost is the
  reason filtering power matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import GraphAlreadyIndexed, GraphNotIndexed
from ..graphs.edit_distance import DEFAULT_BUDGET
from ..graphs.model import Graph
from ..graphs.star import Star, decompose, star_at
from ..perf.assignment import resolve_backend
from ..perf.parallel import parallel_batch_range_query, resolve_workers
from ..perf.sed_cache import GLOBAL_SED_CACHE, CacheInfo
from .ca_search import (
    DEFAULT_H,
    DEFAULT_PARTIAL_FRACTION,
    CAResult,
    ca_range_query,
)
from .graph_lists import build_all_lists
from .index import GraphMeta, TwoLevelIndex
from .stats import QueryStats, WallClock
from .ta_search import TopKResult, resolve_topk_backend, top_k_stars
from .verify import verify_candidates

#: Default k for the TA stage (Table II's default).
DEFAULT_K = 100


@dataclass
class QueryResult:
    """Everything a range query produces.

    Attributes
    ----------
    candidates:
        gids passing every filter; superset of the true answers.
    matches:
        gids *known* to satisfy ``λ(q, g) ≤ τ`` (upper-bound confirmed, plus
        exact verification when requested).
    stats:
        filtering counters (see :class:`repro.core.stats.QueryStats`).
    elapsed:
        wall-clock seconds spent inside the engine.
    verified:
        True when ``matches`` is exactly the answer set.
    """

    candidates: List[object]
    matches: Set[object]
    stats: QueryStats
    elapsed: float
    verified: bool


class SegosIndex:
    """A SEGOS-indexed graph database supporting GED range queries.

    Examples
    --------
    >>> from repro.graphs.model import Graph
    >>> db = SegosIndex()
    >>> db.add("g1", Graph(["a", "b", "c"], [(0, 1), (1, 2)]))
    >>> db.add("g2", Graph(["a", "b", "d"], [(0, 1), (1, 2)]))
    >>> result = db.range_query(Graph(["a", "b", "c"], [(0, 1), (1, 2)]), tau=1)
    >>> sorted(result.candidates)
    ['g1', 'g2']
    """

    def __init__(
        self,
        graphs: Optional[Mapping[object, Graph]] = None,
        *,
        k: int = DEFAULT_K,
        h: int = DEFAULT_H,
        partial_fraction: float = DEFAULT_PARTIAL_FRACTION,
        backend: str = "memory",
        sqlite_path: str = ":memory:",
        assignment_backend: Optional[str] = None,
        topk_backend: Optional[str] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if h < 1:
            raise ValueError("h must be >= 1")
        self.k = k
        self.h = h
        self.partial_fraction = partial_fraction
        # Fail fast on unknown names; the live resolution happens per solve
        # so the REPRO_ASSIGNMENT_BACKEND environment stays authoritative
        # when no explicit name was given.
        resolve_backend(assignment_backend)
        self.assignment_backend = assignment_backend
        # Same discipline for the top-k backend: validate now, resolve per
        # search so REPRO_TOPK_BACKEND stays live when no name was given.
        if topk_backend is not None:
            resolve_topk_backend(topk_backend)
        self.topk_backend = topk_backend
        if backend == "memory":
            self.index = TwoLevelIndex()
        elif backend == "sqlite":
            # Section IV-C's relational-database option: both inverted
            # levels live in B-tree-backed SQLite tables.
            from .sqlite_index import SqliteTwoLevelIndex

            self.index = SqliteTwoLevelIndex(sqlite_path)
        else:
            raise ValueError(f"unknown backend {backend!r} (memory or sqlite)")
        self.backend = backend
        self._graphs: Dict[object, Graph] = {}
        if graphs:
            for gid, graph in graphs.items():
                self.add(gid, graph)

    # ------------------------------------------------------------------
    # Database accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, gid: object) -> bool:
        return gid in self._graphs

    def gids(self) -> Iterable[object]:
        return self._graphs.keys()

    def graph(self, gid: object) -> Graph:
        """Return the indexed graph for *gid* (the live object; do not
        mutate it directly — use the update methods so the index follows)."""
        try:
            return self._graphs[gid]
        except KeyError:
            raise GraphNotIndexed(gid) from None

    # ------------------------------------------------------------------
    # Update kinds 1–2: whole graphs
    # ------------------------------------------------------------------
    def add(self, gid: object, graph: Graph) -> None:
        """Insert a graph (decompose into stars, update both levels)."""
        if gid in self._graphs:
            raise GraphAlreadyIndexed(gid)
        if graph.order == 0:
            raise ValueError("cannot index an empty graph")
        if self.backend == "sqlite" and not isinstance(gid, str):
            raise TypeError(
                f"the sqlite backend stores gids as TEXT; got {type(gid).__name__} "
                f"(use string ids)"
            )
        stored = graph.copy()
        self.index.add_graph(gid, stored, decompose(stored))
        self._graphs[gid] = stored

    def remove(self, gid: object) -> None:
        """Delete a graph from the index."""
        self.index.remove_graph(gid)
        del self._graphs[gid]

    # ------------------------------------------------------------------
    # Update kinds 3–7: in-place mutations (Section IV-C)
    # ------------------------------------------------------------------
    def _affected_stars(self, graph: Graph, vertices: Iterable[int]) -> List[Star]:
        return [star_at(graph, v) for v in vertices if graph.has_vertex(v)]

    def _apply_mutation(self, gid: object, touched: Sequence[int], mutate) -> None:
        """Swap the stars of *touched* vertices around a mutation callback."""
        graph = self.graph(gid)
        before = self._affected_stars(graph, touched)
        mutate(graph)
        after = self._affected_stars(graph, touched)
        self.index.apply_star_delta(
            gid, before, after, GraphMeta(graph.order, graph.max_degree())
        )

    def add_edge(self, gid: object, u: int, v: int) -> None:
        """Insert an edge: refreshes the two endpoint stars."""
        self._apply_mutation(gid, (u, v), lambda g: g.add_edge(u, v))

    def remove_edge(self, gid: object, u: int, v: int) -> None:
        """Delete an edge: refreshes the two endpoint stars."""
        self._apply_mutation(gid, (u, v), lambda g: g.remove_edge(u, v))

    def add_vertex(self, gid: object, vertex: int, label: str) -> None:
        """Insert an isolated vertex: adds exactly one star."""
        self._apply_mutation(gid, (vertex,), lambda g: g.add_vertex(vertex, label))

    def remove_vertex(self, gid: object, vertex: int) -> None:
        """Delete a vertex (and incident edges): refreshes it + neighbours."""
        graph = self.graph(gid)
        touched = [vertex, *graph.neighbors(vertex)]
        self._apply_mutation(gid, touched, lambda g: g.remove_vertex(vertex))

    def relabel_vertex(self, gid: object, vertex: int, label: str) -> None:
        """Relabel a vertex: refreshes its star and all neighbour stars."""
        graph = self.graph(gid)
        touched = [vertex, *graph.neighbors(vertex)]
        self._apply_mutation(gid, touched, lambda g: g.relabel_vertex(vertex, label))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k_sub_units(self, star: Star, k: Optional[int] = None) -> TopKResult:
        """TA stage on its own: the k most SED-similar database stars."""
        return top_k_stars(self.index, star, k or self.k, backend=self.topk_backend)

    def range_query(
        self,
        query: Graph,
        tau: float,
        *,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        partial_fraction: Optional[float] = None,
        verify_workers: Optional[int] = None,
        verify_budget: Optional[int] = None,
        verify_deadline: Optional[float] = None,
    ) -> QueryResult:
        """Answer ``{g : λ(query, g) ≤ tau}`` with filter(-and-verify).

        ``verify``:

        * ``"none"`` — return candidates + upper-bound-confirmed matches;
        * ``"exact"`` — additionally run A* GED on unconfirmed candidates so
          ``matches`` is the exact answer set.

        Exact verification is scheduled through
        :func:`repro.core.verify.verify_candidates`: most-promising
        candidates first, optionally fanned out over ``verify_workers``
        processes (default: ``REPRO_VERIFY_WORKERS``).  ``verify_budget``
        caps each A* run's expanded states (default: the unbounded-in-
        practice A* default) and ``verify_deadline`` (seconds) stops
        scheduling new runs; candidates left undecided by either stay in
        ``candidates`` but not ``matches``, and ``verified`` turns False.
        """
        if verify not in ("none", "exact"):
            raise ValueError(f"unknown verify mode {verify!r}")
        return self._range_query_with_cache(
            query,
            tau,
            k=k,
            h=h,
            verify=verify,
            topk_cache={},
            partial_fraction=partial_fraction,
            verify_workers=verify_workers,
            verify_budget=verify_budget,
            verify_deadline=verify_deadline,
        )

    def batch_range_query(
        self,
        queries: Sequence[Graph],
        tau: float,
        *,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        workers: Optional[int] = None,
        verify_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """Answer a batch of range queries with a shared TA cache.

        Figure 11 feeds query *streams* through the pipeline; the top-k
        sub-unit results depend only on the star (not on the query graph),
        so queries in a batch reuse each other's TA searches.  On workloads
        with overlapping star vocabularies this removes most TA work after
        the first few queries.

        ``workers`` (or the ``REPRO_BATCH_WORKERS`` environment variable)
        above 1 fans query chunks out over worker processes; engines that
        cannot travel to a subprocess (the sqlite backend) silently fall
        back to the serial path with identical answers.  ``verify_workers``
        parallelises exact verification *within* each query; when the batch
        itself runs in worker processes the per-query verification stays
        serial (one pool, not pools of pools).
        """
        if verify not in ("none", "exact"):
            raise ValueError(f"unknown verify mode {verify!r}")
        workers = resolve_workers(workers)
        if workers > 1 and len(queries) > 1:
            results = parallel_batch_range_query(
                self, queries, tau, workers=workers, k=k, h=h, verify=verify
            )
            if results is not None:
                return results
        return self._serial_batch_range_query(
            queries, tau, k=k, h=h, verify=verify, verify_workers=verify_workers
        )

    def _serial_batch_range_query(
        self,
        queries: Sequence[Graph],
        tau: float,
        *,
        k: Optional[int] = None,
        h: Optional[int] = None,
        verify: str = "none",
        verify_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """In-process batch execution (also the per-chunk parallel worker).

        Parallel-batch chunks call this with ``verify_workers=1`` pinned
        (see :func:`repro.perf.parallel.parallel_batch_range_query`), so a
        process-parallel batch never nests a verification pool inside its
        worker processes.
        """
        if verify not in ("none", "exact"):
            raise ValueError(f"unknown verify mode {verify!r}")
        shared_cache: Dict[str, TopKResult] = {}
        results: List[QueryResult] = []
        for query in queries:
            results.append(
                self._range_query_with_cache(
                    query,
                    tau,
                    k=k,
                    h=h,
                    verify=verify,
                    topk_cache=shared_cache,
                    verify_workers=verify_workers,
                )
            )
        return results

    def _range_query_with_cache(
        self,
        query: Graph,
        tau: float,
        *,
        k: Optional[int],
        h: Optional[int],
        verify: str,
        topk_cache: Dict[str, TopKResult],
        partial_fraction: Optional[float] = None,
        verify_workers: Optional[int] = None,
        verify_budget: Optional[int] = None,
        verify_deadline: Optional[float] = None,
    ) -> QueryResult:
        if query.order == 0:
            raise ValueError("query graph must not be empty")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        clock = WallClock.start()
        cache_before = GLOBAL_SED_CACHE.info()
        stats = QueryStats()
        query_stars = decompose(query)
        ta_results: List[TopKResult] = []
        lists = build_all_lists(
            self.index,
            query_stars,
            query.order,
            k or self.k,
            topk_cache=topk_cache,
            ta_results=ta_results,
            backend=self.topk_backend,
        )
        stats.ta_searches = len(ta_results)
        stats.ta_accesses = sum(r.accesses for r in ta_results)
        for r in ta_results:
            stats.count_topk_backend(r.backend, r.scan_width)
        result = ca_range_query(
            self.index,
            self._graphs,
            query,
            tau,
            lists,
            h=h or self.h,
            partial_fraction=(
                partial_fraction
                if partial_fraction is not None
                else self.partial_fraction
            ),
            stats=stats,
            assignment_backend=self.assignment_backend,
        )
        matches = set(result.confirmed)
        verified = verify == "exact"
        if verified:
            report = verify_candidates(
                self._graphs,
                query,
                result.candidates,
                int(tau),
                already_confirmed=matches,
                budget_per_candidate=(
                    verify_budget if verify_budget is not None else DEFAULT_BUDGET
                ),
                deadline=verify_deadline,
                workers=verify_workers,
                assignment_backend=self.assignment_backend,
            )
            matches = set(report.matches)
            stats.settled_by_bounds = report.settled_by_bounds
            stats.astar_runs = report.astar_runs
            verified = report.decided()
        cache_after = GLOBAL_SED_CACHE.info()
        stats.sed_cache_hits = cache_after.hits - cache_before.hits
        stats.sed_cache_misses = cache_after.misses - cache_before.misses
        return QueryResult(
            candidates=result.candidates,
            matches=matches,
            stats=stats,
            elapsed=clock.elapsed(),
            verified=verified,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Total postings across both index levels (Figure 13's metric)."""
        return self.index.size_estimate()

    def sed_cache_info(self) -> CacheInfo:
        """Hit/miss counters of the process-global SED memo cache.

        The cache is shared by every engine in the process (it memoises a
        pure function of signature pairs), so these are process totals;
        per-query deltas live in :attr:`QueryStats.sed_cache_hits` /
        ``sed_cache_misses``.
        """
        return GLOBAL_SED_CACHE.info()

    def sed_cache_clear(self) -> None:
        """Empty the process-global SED memo cache and reset its counters."""
        GLOBAL_SED_CACHE.clear()

    def distinct_star_count(self) -> int:
        """Number of distinct sub-units currently indexed."""
        return len(self.index.catalog)

    def check_consistency(self) -> None:
        """Validate internal index invariants (raises on corruption)."""
        self.index.check_consistency()
        for gid, graph in self._graphs.items():
            from collections import Counter

            expect = Counter(
                self.index.catalog.sid(star) for star in decompose(graph)
            )
            if None in expect:
                raise AssertionError(f"graph {gid!r} has an uncatalogued star")
            if expect != self.index.graph_star_counts(gid):
                raise AssertionError(f"star multiset mismatch for graph {gid!r}")
