"""Reading and writing graph databases in the transaction text format.

The de-facto exchange format for graph-mining corpora (used by gSpan, the
AIDS benchmark dumps, and most index papers' artifacts)::

    t # <graph id>
    v <vertex id> <label>
    e <u> <v>

Edges are unlabelled in this package's model; an optional trailing edge
label token is accepted on input (and ignored with a strict=False parse) for
compatibility with files that carry bond types.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, TextIO, Tuple, Union

from ..errors import ParseError
from .model import Graph

PathLike = Union[str, Path]


def dumps(graphs: Iterable[Tuple[object, Graph]]) -> str:
    """Serialise ``(gid, graph)`` pairs to the transaction text format."""
    out = io.StringIO()
    write_graphs(out, graphs)
    return out.getvalue()


def write_graphs(stream: TextIO, graphs: Iterable[Tuple[object, Graph]]) -> None:
    """Write ``(gid, graph)`` pairs to an open text stream."""
    for gid, graph in graphs:
        stream.write(f"t # {gid}\n")
        index: Dict[int, int] = {}
        for pos, v in enumerate(graph.vertices()):
            index[v] = pos
            stream.write(f"v {pos} {graph.label(v)}\n")
        for u, v in sorted(graph.edges()):
            stream.write(f"e {index[u]} {index[v]}\n")


def save(path: PathLike, graphs: Iterable[Tuple[object, Graph]]) -> None:
    """Write a graph database file."""
    with open(path, "w", encoding="utf-8") as handle:
        write_graphs(handle, graphs)


def loads(text: str, *, strict: bool = True) -> List[Tuple[str, Graph]]:
    """Parse the transaction format from a string."""
    return list(iter_graphs(io.StringIO(text), strict=strict))


def load(path: PathLike, *, strict: bool = True) -> List[Tuple[str, Graph]]:
    """Read a graph database file into ``(gid, graph)`` pairs."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_graphs(handle, strict=strict))


def iter_graphs(stream: TextIO, *, strict: bool = True) -> Iterator[Tuple[str, Graph]]:
    """Stream ``(gid, graph)`` pairs from an open transaction-format file.

    With ``strict=False``, unknown record types and trailing edge labels are
    skipped instead of raising :class:`~repro.errors.ParseError`.
    """
    current: Graph | None = None
    current_id: str | None = None

    def flush() -> Iterator[Tuple[str, Graph]]:
        nonlocal current, current_id
        if current is not None:
            assert current_id is not None
            yield current_id, current
        current, current_id = None, None

    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        kind = tokens[0]
        if kind == "t":
            yield from flush()
            # "t # <id>" or "t <id>"
            if len(tokens) >= 2 and tokens[1] == "#":
                gid = tokens[2] if len(tokens) >= 3 else None
            else:
                gid = tokens[1] if len(tokens) >= 2 else None
            if gid is None:
                raise ParseError("graph header missing id", lineno)
            current = Graph()
            current_id = gid
        elif kind == "v":
            if current is None:
                raise ParseError("vertex record before any graph header", lineno)
            if len(tokens) < 3:
                raise ParseError(f"malformed vertex record {line!r}", lineno)
            try:
                vid = int(tokens[1])
            except ValueError:
                raise ParseError(f"non-integer vertex id {tokens[1]!r}", lineno) from None
            current.add_vertex(vid, tokens[2])
        elif kind == "e":
            if current is None:
                raise ParseError("edge record before any graph header", lineno)
            if len(tokens) < 3 or (strict and len(tokens) > 3):
                raise ParseError(f"malformed edge record {line!r}", lineno)
            try:
                u, v = int(tokens[1]), int(tokens[2])
            except ValueError:
                raise ParseError(f"non-integer edge endpoint in {line!r}", lineno) from None
            current.add_edge(u, v)
        elif strict:
            raise ParseError(f"unknown record type {kind!r}", lineno)
    yield from flush()
