"""Tests for the transaction-format graph database reader/writer."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.graphs import io as gio
from repro.graphs.model import Graph


SAMPLE = """\
t # g1
v 0 a
v 1 b
e 0 1
t # g2
v 0 c
"""


class TestLoads:
    def test_basic_parse(self):
        pairs = gio.loads(SAMPLE)
        assert [gid for gid, _ in pairs] == ["g1", "g2"]
        g1 = pairs[0][1]
        assert g1.order == 2
        assert g1.has_edge(0, 1)
        assert g1.label(1) == "b"

    def test_header_without_hash(self):
        pairs = gio.loads("t 42\nv 0 a\n")
        assert pairs[0][0] == "42"

    def test_blank_lines_and_comments_skipped(self):
        pairs = gio.loads("\n# comment\nt # g\nv 0 a\n\n")
        assert len(pairs) == 1

    def test_vertex_before_header_rejected(self):
        with pytest.raises(ParseError):
            gio.loads("v 0 a\n")

    def test_edge_before_header_rejected(self):
        with pytest.raises(ParseError):
            gio.loads("e 0 1\n")

    def test_missing_graph_id_rejected(self):
        with pytest.raises(ParseError):
            gio.loads("t #\n")

    def test_malformed_vertex_rejected(self):
        with pytest.raises(ParseError):
            gio.loads("t # g\nv 0\n")

    def test_non_integer_vertex_id_rejected(self):
        with pytest.raises(ParseError) as exc:
            gio.loads("t # g\nv x a\n")
        assert exc.value.line_number == 2

    def test_non_integer_edge_rejected(self):
        with pytest.raises(ParseError):
            gio.loads("t # g\nv 0 a\nv 1 b\ne 0 b\n")

    def test_unknown_record_strict(self):
        with pytest.raises(ParseError):
            gio.loads("t # g\nz 1 2\n")

    def test_unknown_record_lenient(self):
        pairs = gio.loads("t # g\nv 0 a\nz 1 2\n", strict=False)
        assert len(pairs) == 1

    def test_edge_label_token_strict_vs_lenient(self):
        text = "t # g\nv 0 a\nv 1 b\ne 0 1 single\n"
        with pytest.raises(ParseError):
            gio.loads(text)
        pairs = gio.loads(text, strict=False)
        assert pairs[0][1].has_edge(0, 1)


class TestRoundTrip:
    def test_dumps_loads_round_trip(self, small_aids):
        items = list(small_aids.graphs.items())[:10]
        text = gio.dumps(items)
        parsed = gio.loads(text)
        assert len(parsed) == 10
        for (gid_in, g_in), (gid_out, g_out) in zip(items, parsed):
            assert gid_out == str(gid_in)
            # Writer renumbers to 0..n-1; compare by isomorphism-invariant
            # statistics (ids differ but structure must match).
            assert g_out.order == g_in.order
            assert g_out.size == g_in.size
            assert g_out.label_multiset() == g_in.label_multiset()

    def test_save_load_file(self, tmp_path, paper_g1):
        path = tmp_path / "db.txt"
        gio.save(path, [("g1", paper_g1)])
        pairs = gio.load(path)
        assert pairs[0][0] == "g1"
        assert pairs[0][1] == paper_g1

    def test_iter_graphs_streams(self, tmp_path, paper_g1, paper_g2):
        path = tmp_path / "db.txt"
        gio.save(path, [("a", paper_g1), ("b", paper_g2)])
        with open(path) as handle:
            gids = [gid for gid, _ in gio.iter_graphs(handle)]
        assert gids == ["a", "b"]

    def test_empty_text(self):
        assert gio.loads("") == []
