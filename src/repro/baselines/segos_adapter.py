"""Adapter exposing :class:`repro.core.engine.SegosIndex` as a baseline method.

Lets the benchmark harness sweep SEGOS with the same interface as C-Star,
κ-AT and C-Tree.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.engine import SegosIndex
from ..graphs.model import Graph
from .base import FilterResult, RangeQueryMethod


class SegosMethod(RangeQueryMethod):
    """SEGOS (non-pipelined CA search) behind the baseline interface."""

    name = "SEGOS"

    def __init__(
        self,
        graphs: Mapping[object, Graph],
        *,
        k: Optional[int] = None,
        h: Optional[int] = None,
    ) -> None:
        super().__init__(graphs)
        kwargs = {}
        if k is not None:
            kwargs["k"] = k
        if h is not None:
            kwargs["h"] = h
        self.engine = SegosIndex(self.graphs, **kwargs)

    def range_query(self, query: Graph, *, tau: float) -> FilterResult:
        result = self.engine.range_query(query, tau=tau)
        return FilterResult(
            candidates=result.candidates,
            confirmed=set(result.matches),
            graphs_accessed=result.stats.graphs_accessed,
        )

    def index_size(self) -> int:
        return self.engine.index_size()
