"""Corpus statistics — the numbers the paper quotes about its datasets.

Section VI characterises each dataset by graph count, average order, label
alphabet size and the shape of the size distribution ("near normal" for
AIDS, "near uniform" for Linux).  :func:`summarize` computes exactly those,
so tests can assert our stand-in corpora match the claimed shapes and
examples can print dataset cards.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..graphs.model import Graph


@dataclass(frozen=True)
class CorpusSummary:
    """Descriptive statistics of a graph corpus."""

    count: int
    avg_order: float
    min_order: int
    max_order: int
    order_stddev: float
    avg_size: float  # edges
    distinct_labels: int
    max_degree: int
    #: excess kurtosis proxy: share of graphs within 1 stddev of the mean —
    #: ≈0.68 for a normal size distribution, ≈0.58 for a uniform one.
    within_one_stddev: float

    def describe(self) -> str:
        """One-paragraph text card (used by examples)."""
        return (
            f"{self.count} graphs, order {self.min_order}..{self.max_order} "
            f"(avg {self.avg_order:.1f} ± {self.order_stddev:.1f}), "
            f"avg {self.avg_size:.1f} edges, {self.distinct_labels} labels, "
            f"max degree {self.max_degree}"
        )


def summarize(graphs: Iterable[Graph]) -> CorpusSummary:
    """Compute a :class:`CorpusSummary` over *graphs* (non-empty)."""
    orders: List[int] = []
    sizes: List[int] = []
    labels: set = set()
    max_degree = 0
    for g in graphs:
        orders.append(g.order)
        sizes.append(g.size)
        labels.update(g.labels().values())
        max_degree = max(max_degree, g.max_degree())
    if not orders:
        raise ValueError("cannot summarise an empty corpus")
    mean = statistics.fmean(orders)
    stddev = statistics.pstdev(orders)
    if stddev > 0:
        within = sum(1 for o in orders if abs(o - mean) <= stddev) / len(orders)
    else:
        within = 1.0
    return CorpusSummary(
        count=len(orders),
        avg_order=mean,
        min_order=min(orders),
        max_order=max(orders),
        order_stddev=stddev,
        avg_size=statistics.fmean(sizes),
        distinct_labels=len(labels),
        max_degree=max_degree,
        within_one_stddev=within,
    )


def label_histogram(graphs: Iterable[Graph]) -> Dict[str, int]:
    """Vertex-label frequencies over a corpus (Zipf-skew checks)."""
    counter: Counter = Counter()
    for g in graphs:
        counter.update(g.labels().values())
    return dict(counter)


def order_histogram(graphs: Iterable[Graph]) -> Dict[int, int]:
    """Graph-order frequencies (size-distribution shape checks)."""
    counter: Counter = Counter(g.order for g in graphs)
    return dict(counter)
